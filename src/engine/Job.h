//===- engine/Job.h - Synthesis jobs ----------------------------*- C++ -*-===//
//
// Part of the Regel reproduction. A SynthJob is one multi-modal synthesis
// request (sketch list + examples) submitted to the engine. The engine
// fans it out into one task per sketch; the job object carries the shared
// state those tasks coordinate through:
//
//   * a cancellation flag — set when the job has TopK answers (so sibling
//     sketch tasks stop mid-search), when the per-job deadline passes, or
//     when the client calls cancel();
//   * a per-job deadline started at submission;
//   * the answer collector (mutex-guarded; per-rank buckets in
//     deterministic mode);
//   * the completion machinery: a latch (wait / waitFor), registered
//     onComplete continuations, and — when the request opts in — a slot
//     in the engine's completion queue (Engine::pollCompleted).
//
// Completion is async-first: continuations and the completion queue are
// the primary mechanism (one event-loop thread can drive thousands of
// jobs), and wait() is a thin blocking shim kept for simple clients.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_JOB_H
#define REGEL_ENGINE_JOB_H

#include "engine/WorkerPool.h"
#include "obs/Trace.h"
#include "sketch/Sketch.h"
#include "support/Mutex.h"
#include "support/Timer.h"
#include "synth/Config.h"
#include "synth/PartialRegex.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace regel::engine {

class Engine;

/// One synthesis request, as accepted by Engine::submit.
struct JobRequest {
  std::vector<SketchPtr> Sketches; ///< ranked, best first
  Examples E;
  unsigned TopK = 1;

  /// Scheduling class: every per-sketch task the job fans out is queued
  /// under this priority, so a Batch fan-out cannot starve Interactive
  /// queries sharing the pool (the workers pick weighted by class; see
  /// WorkerPool). Interactive is the default so priority-unaware callers
  /// behave exactly as before.
  Priority Pri = Priority::Interactive;

  /// Per-job deadline in milliseconds (0 = none). The clock starts when
  /// the job's first task begins executing, not at submission: BudgetMs is
  /// the paper's synthesis budget t, and queue wait under load must not
  /// eat it.
  int64_t BudgetMs = 10000;
  int64_t PerSketchBudgetMs = 0; ///< 0 = BudgetMs / #sketches, 250ms floor

  /// Submit-anchored residency SLA in milliseconds (0 = none): bounds
  /// queue wait PLUS execution, complementing the execution-anchored
  /// BudgetMs. A job still queued when it expires is skipped without
  /// running (its tasks count as skipped and the result reports
  /// ResidencyExpired); a running job has its remaining search budget
  /// clamped so it cannot outlive the SLA either.
  int64_t ResidencyBudgetMs = 0;
  SynthConfig Synth;             ///< base PBE settings for every task

  /// Deterministic mode: run every sketch task to completion (no
  /// cancellation on success) and order answers by sketch rank, so the
  /// result is independent of worker count and scheduling — PROVIDED the
  /// per-sketch searches are themselves deterministic. Wall-clock budgets
  /// are not: set BudgetMs = 0 and bound the search with
  /// Synth.MaxPops instead (as the determinism tests do). Costs the work
  /// cancellation would have skipped.
  bool Deterministic = false;

  /// Opt the job into the engine's completion queue: when it finishes
  /// (normally, rejected, or empty) its handle becomes retrievable via
  /// Engine::pollCompleted / waitCompleted. Opt-in so wait()-style
  /// clients that never poll don't leak handles into the queue.
  bool EnqueueCompletion = false;

  /// Span sink for this job (normally created by the engine at submit when
  /// the tracer samples the job; a caller may pre-attach one to force
  /// tracing). Spans are recorded from submit through queue, dispatch,
  /// per-sketch task, DFA compile, and SMT inference; the final trace id
  /// is reported in JobResult::TraceId and fetchable while retained.
  std::shared_ptr<obs::TraceContext> Trace;

  std::string Tag; ///< free-form client label (server/bench reporting)
};

/// One answer of a job.
struct JobAnswer {
  RegexPtr Regex;
  unsigned SketchRank = 0; ///< rank of the sketch that produced it
  SketchPtr Sketch;
};

/// Final outcome of a job. Task counts partition the job's sketch list:
/// TasksRun + TasksSkipped equals the number of sketches, and TasksStopped
/// is the subset of TasksRun that was cancelled mid-search.
struct JobResult {
  std::vector<JobAnswer> Answers; ///< up to TopK
  double QueueMs = 0;   ///< submit -> first task started
  double TotalMs = 0;   ///< submit -> completion (includes queue wait)
  double ExecMs = 0;    ///< first task started -> completion
  uint64_t TasksRun = 0;     ///< tasks that executed a search
  uint64_t TasksSkipped = 0; ///< tasks cancelled before starting
  uint64_t TasksStopped = 0; ///< subset of TasksRun, stopped mid-search
  bool DeadlineExpired = false;
  bool ResidencyExpired = false; ///< submit-anchored SLA missed
  bool Rejected = false; ///< shed by queue-depth admission; nothing ran

  /// Shed by deadline-aware admission: the service-time estimator judged
  /// ResidencyBudgetMs unmeetable at submit, so nothing was enqueued.
  /// Distinct from Rejected (queue-depth high-water) — a client can back
  /// off differently for "queue full" vs "your deadline is hopeless".
  bool ShedOnArrival = false;

  /// Id of the job's span trace (0 = not traced). Non-zero does not
  /// guarantee the trace is still fetchable: retention is sampled and the
  /// ring is bounded — see obs::Tracer.
  uint64_t TraceId = 0;

  bool solved() const { return !Answers.empty(); }
};

/// Handle to a submitted job. Created by Engine::submit; shared between
/// the client and the in-flight tasks.
class SynthJob {
public:
  /// A completion continuation. Invoked exactly once per registration,
  /// with the final result.
  using Callback = std::function<void(const JobResult &)>;

  /// Registers a continuation:
  ///
  ///   * registered before completion, it runs on the worker thread that
  ///     finishes the job (for jobs completed at submit — rejected or
  ///     empty — on the submitting thread), after the result is final and
  ///     done() is true;
  ///   * registered after completion, it runs synchronously on the
  ///     registering thread, before onComplete returns;
  ///   * a registration racing completion resolves to exactly one of the
  ///     two — never zero or two invocations.
  ///
  /// Multiple continuations may be registered; each runs exactly once, in
  /// registration order. Continuations must not block (they hold up the
  /// finishing worker): hand heavy work to another thread, or use the
  /// engine's completion queue and poll from an event loop instead.
  void onComplete(Callback CB);

  /// Blocks until every task of the job has finished, then returns a copy
  /// of the result (by value, so `engine.submit(...)->wait()` is safe even
  /// though the temporary handle dies with the full expression). A thin
  /// shim over the timed wait; kept for simple synchronous clients.
  ///
  /// Must not be called from an engine worker thread — the worker would
  /// wait on work only it can run. Debug builds assert on this.
  JobResult wait();

  /// Blocks until the job completes or \p TimeoutMs milliseconds pass.
  /// Returns the result on completion, std::nullopt on timeout (the job
  /// keeps running; cancel() it to give up on it).
  std::optional<JobResult> waitFor(int64_t TimeoutMs);

  /// Non-blocking completion probe.
  bool done() const;

  /// Requests cancellation: running tasks stop at their next deadline
  /// poll, queued ones return immediately. wait() still returns (with
  /// whatever answers were collected before the cancel), and completion
  /// continuations still fire exactly once.
  void cancel() { Cancel.store(true, std::memory_order_relaxed); }

  const JobRequest &request() const { return Req; }

  /// Milliseconds of residency SLA left, re-sampled through the job's
  /// clock NOW (never a value cached at submit); 0 once the SLA has
  /// expired. Callers must branch on a zero return rather than pass the
  /// value to a budget field where 0 means "unlimited". Meaningless when
  /// the request has no ResidencyBudgetMs. Public so clients reclaiming
  /// abandoned work (the socket server) bound their waits by live SLA
  /// math on the same — possibly virtual — timeline the engine enforces.
  int64_t residencyRemainingMs() const {
    return std::max<int64_t>(
        Req.ResidencyBudgetMs - static_cast<int64_t>(sinceSubmitMs()), 0);
  }

private:
  friend class Engine;

  /// ExecStartUs value meaning "expired in queue before any task started"
  /// (claimed by the engine's deadline sweep; excludes markStarted).
  static constexpr int64_t ExpiredBeforeStartUs = -2;

  SynthJob(JobRequest R, std::shared_ptr<const Clock> C);

  /// Marks execution started (first caller wins; later calls no-op).
  /// Returns false iff the engine's deadline sweep already expired the
  /// job in queue — the task must not run, touch the result, or account
  /// anything (the sweep accounted every task as skipped).
  bool markStarted();

  /// Milliseconds of execution so far (0 before the first task starts).
  double execElapsedMs() const;

  /// True once the execution-anchored deadline has passed.
  bool deadlineExpired() const {
    return Req.BudgetMs > 0 &&
           execElapsedMs() >= static_cast<double>(Req.BudgetMs);
  }

  /// Milliseconds since submission (queue wait included).
  double sinceSubmitMs() const { return SinceSubmit.elapsedMs(); }

  /// True once the submit-anchored residency SLA has passed.
  bool residencyExpired() const {
    return Req.ResidencyBudgetMs > 0 && residencyRemainingMs() == 0;
  }

  /// Absolute clock instant (us) the residency SLA lapses. Only
  /// meaningful when ResidencyBudgetMs > 0.
  int64_t residencyDeadlineUs() const {
    return SinceSubmit.startUs() + Req.ResidencyBudgetMs * 1000;
  }

  JobRequest Req;
  /// The engine's time source. Shared ownership: a client can hold the
  /// handle (and call waitFor) after the engine is gone.
  std::shared_ptr<const Clock> Clk;
  std::atomic<bool> Cancel{false};
  std::atomic<unsigned> Remaining{0}; ///< tasks not yet finished
  /// Exactly-once guard on finalization: the normal last-task path and
  /// the deadline sweep's expire-in-queue path both publish through it.
  std::atomic<bool> Finalized{false};
  Stopwatch SinceSubmit;
  /// Microseconds from submission to first task start; -1 = not started,
  /// ExpiredBeforeStartUs = expired in queue (see markStarted).
  /// Anchors the per-job deadline and QueueMs/ExecMs.
  std::atomic<int64_t> ExecStartUs{-1};

  /// The estimator's exec estimate for the job's class, sampled at accept
  /// time (negative = cold). Compared against actual ExecMs at completion
  /// to feed the estimator-error histogram — the figure that shows
  /// whether the EWMA over- or under-estimates a class.
  double EstAtSubmitMs = -1.0;

  // Collector state (guarded by M).
  mutable Mutex M;
  std::condition_variable CV;
  bool Ready REGEL_GUARDED_BY(M) = false;
  /// Pending continuations (pre-Ready).
  std::vector<Callback> Callbacks REGEL_GUARDED_BY(M);
  /// Structural dedup across sketches.
  std::unordered_set<size_t> SeenHashes REGEL_GUARDED_BY(M);
  /// Deterministic buckets.
  std::vector<std::vector<RegexPtr>> PerSketch REGEL_GUARDED_BY(M);
  JobResult Result REGEL_GUARDED_BY(M);

  // CV-wait predicate: runs inside waitFor with M held, but Clang
  // analyzes the lambda body as an unlocked function.
  bool readyPred() const REGEL_NO_THREAD_SAFETY_ANALYSIS { return Ready; }
};

using JobPtr = std::shared_ptr<SynthJob>;

/// Registry of in-flight jobs: submission enqueues, completion dequeues.
/// Gives the engine a live view for monitoring (depth gauge), a drain
/// barrier for shutdown, and bulk cancellation.
class JobQueue {
public:
  /// Adds \p J unless the queue already holds \p MaxDepth jobs (0 = no
  /// limit); returns false without adding when full. Check and insert are
  /// one critical section, so the admission bound is firm even when many
  /// clients submit concurrently.
  bool tryAdd(const JobPtr &J, size_t MaxDepth);
  void remove(const SynthJob *J);

  /// Number of jobs submitted but not yet completed.
  size_t depth() const;

  /// Requests cancellation of every in-flight job.
  void cancelAll();

  /// Blocks until the queue is empty.
  void drain();

private:
  mutable Mutex M;
  std::condition_variable CV;
  std::vector<JobPtr> Active REGEL_GUARDED_BY(M);

  // CV-wait predicate: runs inside drain with M held (see SynthJob).
  bool drainedPred() const REGEL_NO_THREAD_SAFETY_ANALYSIS {
    return Active.empty();
  }
};

} // namespace regel::engine

#endif // REGEL_ENGINE_JOB_H
