//===- engine/Stats.h - Engine-wide counters --------------------*- C++ -*-===//
//
// Part of the Regel reproduction. Aggregates what the engine did across
// all jobs: job/task lifecycle counts, summed synthesis counters, and (via
// Engine::snapshot) the cross-run cache statistics. All counters are
// relaxed atomics — they are monitoring data, not synchronization.
//
// Task accounting is a partition: every per-sketch task the engine fans
// out is counted exactly once, either in TasksRun (it executed a search)
// or in TasksSkipped (cancellation/deadline/shutdown ended it before it
// started). TasksStopped is a sub-count of TasksRun — searches that were
// cancelled mid-run — so TasksRun + TasksSkipped equals the number of
// sketches fanned out, always.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_STATS_H
#define REGEL_ENGINE_STATS_H

#include "synth/Synthesizer.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace regel::engine {

/// A point-in-time copy of every engine counter (plain values, printable).
struct StatsSnapshot {
  uint64_t JobsSubmitted = 0;
  uint64_t JobsCompleted = 0;
  uint64_t JobsSolved = 0;
  uint64_t JobsRejected = 0; ///< shed at the queue-depth high-water mark
  uint64_t JobsDeadlineExpired = 0;
  uint64_t JobsResidencyExpired = 0; ///< submit-anchored SLA missed

  /// Shed at submit because the service-time estimator judged the
  /// residency budget unmeetable (JobResult::ShedOnArrival). Disjoint
  /// from JobsRejected and from JobsCompleted: every submission lands in
  /// exactly one of {Rejected, ShedOnArrival, Completed}.
  uint64_t JobsShedOnArrival = 0;

  /// Queued jobs the deadline sweep expired before any task started —
  /// a subset of JobsResidencyExpired (the rest expired lazily, at task
  /// start or mid-run).
  uint64_t JobsExpiredInQueue = 0;
  uint64_t TasksRun = 0;     ///< per-sketch tasks that executed a search
  uint64_t TasksSkipped = 0; ///< tasks cancelled before their search began
  uint64_t TasksStopped = 0; ///< subset of TasksRun cancelled mid-search
  uint64_t TasksStolen = 0;  ///< pool-level steals
  // Pool-level runs split by scheduling class (JobRequest::Pri); the sum
  // equals TasksRun + any skip-path tasks, since the pool counts every
  // executed closure whether or not it ran a search.
  uint64_t TasksRunInteractive = 0;
  uint64_t TasksRunBatch = 0;
  uint64_t TasksRunBackground = 0;
  uint64_t CompletionsPending = 0; ///< completion-queue backlog (gauge)
  uint64_t SolutionsFound = 0;

  // Summed SynthStats over every per-sketch run.
  uint64_t Pops = 0;
  uint64_t Expansions = 0;
  uint64_t PrunedInfeasible = 0;
  uint64_t ConcreteChecked = 0;

  // SMT accounting, split by what actually ran (see SynthStats):
  // SmtIntervalEvals are the cheap three-valued sweeps, SmtSolves are
  // bounded DFS model searches actually executed, SmtCacheHits are
  // solve() calls answered by the shared verdict store. With one engine
  // owning its caches, SmtSolves == SmtStoreMisses and SmtCacheHits ==
  // SmtStoreHits + SmtStoreImpliedHits — the partition is exact.
  uint64_t SmtIntervalEvals = 0;
  uint64_t SmtSolves = 0;
  uint64_t SmtCacheHits = 0;
  uint64_t SmtUnsatShortCircuits = 0;

  // DFA resolution is an exact partition: every get is served by the
  // run-local cache (LocalHits, the store is never consulted), by the
  // shared store (SharedHits), or by a compile.
  // DfaGets == DfaLocalHits + DfaSharedHits + DfaCompiles, always.
  uint64_t DfaGets = 0;       ///< DFA requests across all runs
  uint64_t DfaLocalHits = 0;  ///< served run-locally, store not consulted
  uint64_t DfaSharedHits = 0; ///< local misses served by the shared store
  uint64_t DfaCompiles = 0;   ///< compilations actually paid
  double SynthMsTotal = 0;

  // Shared DFA tier (zero when EngineConfig::DfaTier is off or no tier
  // client is attached — see engine::TieredDfaStore). Tier hits are a
  // subset of DfaSharedHits: a fetch served by the tier surfaces to the
  // run as a shared-store hit, so the DfaGets partition above stays
  // exact. FlightServed counts lookups that waited on another thread's
  // in-flight compile/fetch instead of duplicating it (single-flight).
  uint64_t DfaTierHits = 0;
  uint64_t DfaTierMisses = 0;
  uint64_t DfaTierPuts = 0;        ///< blobs published write-through
  uint64_t DfaTierPutsSkipped = 0; ///< DFAs too large to serialize
  uint64_t DfaFlightServed = 0;
  uint64_t DfaFlightTimeouts = 0;

  /// Share of DFA requests served without compiling (local cache, shared
  /// store, or eviction-then-recompile absorbed elsewhere) — the
  /// end-to-end figure a bounded store is judged by.
  double dfaResolutionRate() const {
    return DfaGets ? 1.0 - static_cast<double>(DfaCompiles) /
                               static_cast<double>(DfaGets)
                   : 0.0;
  }

  // Cross-run caches.
  uint64_t DfaStoreHits = 0;
  uint64_t DfaStoreMisses = 0;
  uint64_t DfaStoreSize = 0;
  uint64_t DfaStoreCost = 0; ///< summed DFA cost units (states+transitions)
  uint64_t DfaStoreEvictions = 0;
  uint64_t ApproxStoreHits = 0;
  uint64_t ApproxStoreMisses = 0;
  uint64_t ApproxStoreSize = 0;
  uint64_t ApproxStoreEvictions = 0;
  uint64_t SmtStoreHits = 0;        ///< exact (formula, domains) answers
  uint64_t SmtStoreImpliedHits = 0; ///< Unsat answers by conjunct subset
  uint64_t SmtStoreMisses = 0;
  uint64_t SmtStoreSize = 0;
  uint64_t SmtStoreEvictions = 0;

  /// Share of verdict-store lookups answered without a search (exact or
  /// implied) — the warm-pass figure the SMT cache is judged by.
  double smtCacheHitRate() const {
    const uint64_t Answered = SmtStoreHits + SmtStoreImpliedHits;
    const uint64_t Lookups = Answered + SmtStoreMisses;
    return Lookups ? static_cast<double>(Answered) /
                         static_cast<double>(Lookups)
                   : 0.0;
  }

  // Service-time estimator state (EWMA exec ms per class; negative =
  // cold, no samples yet). What deadline-aware shedding decides on.
  double EstimatorInteractiveMs = -1.0;
  double EstimatorBatchMs = -1.0;
  double EstimatorBackgroundMs = -1.0;
  double EstimatorBlendedMs = -1.0;
  uint64_t EstimatorSamplesInteractive = 0;
  uint64_t EstimatorSamplesBatch = 0;
  uint64_t EstimatorSamplesBackground = 0;

  /// Renders the snapshot as a single JSON object.
  std::string toJson() const;

  /// Folds \p O into this snapshot: counters and sizes sum, estimator
  /// estimates combine sample-weighted (a cold side contributes
  /// nothing). This is how a router presents N shards' snapshots as one
  /// fleet view, taken at call time — merging snapshots, never blobs.
  void merge(const StatsSnapshot &O);
};

/// Thread-safe accumulator behind StatsSnapshot.
class EngineStats {
public:
  void jobSubmitted() { add(JobsSubmitted); }
  void jobRejected() { add(JobsRejected); }
  void jobShedOnArrival() { add(JobsShedOnArrival); }
  void jobExpiredInQueue() { add(JobsExpiredInQueue); }
  void jobCompleted(bool Solved, bool DeadlineExpired,
                    bool ResidencyExpired) {
    add(JobsCompleted);
    if (Solved)
      add(JobsSolved);
    if (DeadlineExpired)
      add(JobsDeadlineExpired);
    if (ResidencyExpired)
      add(JobsResidencyExpired);
  }
  void taskRan() { add(TasksRun); }
  void taskSkipped() { add(TasksSkipped); }
  void taskStopped() { add(TasksStopped); }
  void solutionsFound(uint64_t N) { add(SolutionsFound, N); }

  void addSynth(const SynthStats &S) {
    add(Pops, S.Pops);
    add(Expansions, S.Expansions);
    add(PrunedInfeasible, S.PrunedInfeasible);
    add(ConcreteChecked, S.ConcreteChecked);
    add(SmtIntervalEvals, S.SmtIntervalEvals);
    add(SmtSolves, S.SmtSolves);
    add(SmtCacheHits, S.SmtCacheHits);
    add(SmtUnsatShortCircuits, S.SmtUnsatShortCircuits);
    add(DfaGets, S.DfaGets);
    add(DfaLocalHits, S.DfaLocalHits);
    add(DfaSharedHits, S.DfaSharedHits);
    add(DfaCompiles, S.DfaCompiles);
    SynthMsTotalU.fetch_add(static_cast<uint64_t>(S.TimeMs * 1000.0),
                            std::memory_order_relaxed);
  }

  /// Copies the job/task/synth counters into \p Out (cache and pool fields
  /// are filled by the engine, which owns those objects).
  void fill(StatsSnapshot &Out) const {
    Out.JobsSubmitted = get(JobsSubmitted);
    Out.JobsCompleted = get(JobsCompleted);
    Out.JobsSolved = get(JobsSolved);
    Out.JobsRejected = get(JobsRejected);
    Out.JobsShedOnArrival = get(JobsShedOnArrival);
    Out.JobsExpiredInQueue = get(JobsExpiredInQueue);
    Out.JobsDeadlineExpired = get(JobsDeadlineExpired);
    Out.JobsResidencyExpired = get(JobsResidencyExpired);
    Out.TasksRun = get(TasksRun);
    Out.TasksSkipped = get(TasksSkipped);
    Out.TasksStopped = get(TasksStopped);
    Out.SolutionsFound = get(SolutionsFound);
    Out.Pops = get(Pops);
    Out.Expansions = get(Expansions);
    Out.PrunedInfeasible = get(PrunedInfeasible);
    Out.ConcreteChecked = get(ConcreteChecked);
    Out.SmtIntervalEvals = get(SmtIntervalEvals);
    Out.SmtSolves = get(SmtSolves);
    Out.SmtCacheHits = get(SmtCacheHits);
    Out.SmtUnsatShortCircuits = get(SmtUnsatShortCircuits);
    Out.DfaGets = get(DfaGets);
    Out.DfaLocalHits = get(DfaLocalHits);
    Out.DfaSharedHits = get(DfaSharedHits);
    Out.DfaCompiles = get(DfaCompiles);
    Out.SynthMsTotal =
        static_cast<double>(SynthMsTotalU.load(std::memory_order_relaxed)) /
        1000.0;
  }

private:
  using Counter = std::atomic<uint64_t>;

  static void add(Counter &C, uint64_t N = 1) {
    C.fetch_add(N, std::memory_order_relaxed);
  }
  static uint64_t get(const Counter &C) {
    return C.load(std::memory_order_relaxed);
  }

  Counter JobsSubmitted{0}, JobsCompleted{0}, JobsSolved{0}, JobsRejected{0},
      JobsShedOnArrival{0}, JobsExpiredInQueue{0}, JobsDeadlineExpired{0},
      JobsResidencyExpired{0};
  Counter TasksRun{0}, TasksSkipped{0}, TasksStopped{0}, SolutionsFound{0};
  Counter Pops{0}, Expansions{0}, PrunedInfeasible{0}, ConcreteChecked{0},
      SmtIntervalEvals{0}, SmtSolves{0}, SmtCacheHits{0},
      SmtUnsatShortCircuits{0}, DfaGets{0}, DfaLocalHits{0},
      DfaSharedHits{0}, DfaCompiles{0};
  Counter SynthMsTotalU{0}; ///< microseconds, to keep the counter integral
};

} // namespace regel::engine

#endif // REGEL_ENGINE_STATS_H
