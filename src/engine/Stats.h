//===- engine/Stats.h - Engine-wide counters --------------------*- C++ -*-===//
//
// Part of the Regel reproduction. Aggregates what the engine did across
// all jobs: job/task lifecycle counts, summed synthesis counters, and (via
// Engine::snapshot) the cross-run cache statistics. All counters are
// relaxed atomics — they are monitoring data, not synchronization.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_STATS_H
#define REGEL_ENGINE_STATS_H

#include "synth/Synthesizer.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace regel::engine {

/// A point-in-time copy of every engine counter (plain values, printable).
struct StatsSnapshot {
  uint64_t JobsSubmitted = 0;
  uint64_t JobsCompleted = 0;
  uint64_t JobsSolved = 0;
  uint64_t JobsDeadlineExpired = 0;
  uint64_t TasksRun = 0;       ///< per-sketch tasks that executed a search
  uint64_t TasksCancelled = 0; ///< tasks skipped or stopped by cancellation
  uint64_t TasksStolen = 0;    ///< pool-level steals
  uint64_t SolutionsFound = 0;

  // Summed SynthStats over every per-sketch run.
  uint64_t Pops = 0;
  uint64_t Expansions = 0;
  uint64_t PrunedInfeasible = 0;
  uint64_t ConcreteChecked = 0;
  uint64_t SmtSolveCalls = 0;
  double SynthMsTotal = 0;

  // Cross-run caches.
  uint64_t DfaStoreHits = 0;
  uint64_t DfaStoreMisses = 0;
  uint64_t DfaStoreSize = 0;
  uint64_t ApproxStoreHits = 0;
  uint64_t ApproxStoreMisses = 0;
  uint64_t ApproxStoreSize = 0;

  /// Renders the snapshot as a single JSON object.
  std::string toJson() const;
};

/// Thread-safe accumulator behind StatsSnapshot.
class EngineStats {
public:
  void jobSubmitted() { add(JobsSubmitted); }
  void jobCompleted(bool Solved, bool DeadlineExpired) {
    add(JobsCompleted);
    if (Solved)
      add(JobsSolved);
    if (DeadlineExpired)
      add(JobsDeadlineExpired);
  }
  void taskRan() { add(TasksRun); }
  void taskCancelled() { add(TasksCancelled); }
  void solutionsFound(uint64_t N) { add(SolutionsFound, N); }

  void addSynth(const SynthStats &S) {
    add(Pops, S.Pops);
    add(Expansions, S.Expansions);
    add(PrunedInfeasible, S.PrunedInfeasible);
    add(ConcreteChecked, S.ConcreteChecked);
    add(SmtSolveCalls, S.SmtSolveCalls);
    SynthMsTotalU.fetch_add(static_cast<uint64_t>(S.TimeMs * 1000.0),
                            std::memory_order_relaxed);
  }

  /// Copies the job/task/synth counters into \p Out (cache and pool fields
  /// are filled by the engine, which owns those objects).
  void fill(StatsSnapshot &Out) const {
    Out.JobsSubmitted = get(JobsSubmitted);
    Out.JobsCompleted = get(JobsCompleted);
    Out.JobsSolved = get(JobsSolved);
    Out.JobsDeadlineExpired = get(JobsDeadlineExpired);
    Out.TasksRun = get(TasksRun);
    Out.TasksCancelled = get(TasksCancelled);
    Out.SolutionsFound = get(SolutionsFound);
    Out.Pops = get(Pops);
    Out.Expansions = get(Expansions);
    Out.PrunedInfeasible = get(PrunedInfeasible);
    Out.ConcreteChecked = get(ConcreteChecked);
    Out.SmtSolveCalls = get(SmtSolveCalls);
    Out.SynthMsTotal =
        static_cast<double>(SynthMsTotalU.load(std::memory_order_relaxed)) /
        1000.0;
  }

private:
  using Counter = std::atomic<uint64_t>;

  static void add(Counter &C, uint64_t N = 1) {
    C.fetch_add(N, std::memory_order_relaxed);
  }
  static uint64_t get(const Counter &C) {
    return C.load(std::memory_order_relaxed);
  }

  Counter JobsSubmitted{0}, JobsCompleted{0}, JobsSolved{0},
      JobsDeadlineExpired{0};
  Counter TasksRun{0}, TasksCancelled{0}, SolutionsFound{0};
  Counter Pops{0}, Expansions{0}, PrunedInfeasible{0}, ConcreteChecked{0},
      SmtSolveCalls{0};
  Counter SynthMsTotalU{0}; ///< microseconds, to keep the counter integral
};

} // namespace regel::engine

#endif // REGEL_ENGINE_STATS_H
