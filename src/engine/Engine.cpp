//===- engine/Engine.cpp --------------------------------------------------===//

#include "engine/Engine.h"

#include "obs/Probe.h"
#include "synth/Synthesizer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

using namespace regel;
using namespace regel::engine;

namespace {

/// Label fragment for a scheduling class, e.g. `pri="interactive"`.
std::string priLabel(Priority P) {
  return std::string("pri=\"") + priorityName(P) + "\"";
}

} // namespace

Engine::Engine(EngineConfig C)
    : Cfg(std::move(C)),
      Clk(Cfg.TimeSource ? Cfg.TimeSource : Clock::steady()),
      Caches(Cfg.Caches ? Cfg.Caches
                        : std::make_shared<SharedCaches>(Cfg.CacheShards,
                                                         Cfg.DfaCacheLimits,
                                                         Cfg.ApproxCacheLimits,
                                                         Cfg.SmtCacheLimits)),
      Reg(std::make_shared<obs::Registry>()),
      Tracing(std::make_shared<obs::Tracer>(Cfg.Trace)),
      Pool(Cfg.Threads, Cfg.FifoScheduling) {
  if (Cfg.Observability) {
    // Resolve every hot-path histogram once; record() afterwards touches
    // only the histogram's own atomics.
    for (unsigned P = 0; P < NumPriorities; ++P) {
      const std::string L = priLabel(static_cast<Priority>(P));
      PerPri[P].QueueUs = &Reg->histogram("regel_job_queue_us", L);
      PerPri[P].ExecUs = &Reg->histogram("regel_job_exec_us", L);
      PerPri[P].TotalUs = &Reg->histogram("regel_job_total_us", L);
      PerPri[P].EstErrUs = &Reg->histogram("regel_estimator_abs_error_us", L);
    }
    TaskExecUs = &Reg->histogram("regel_task_exec_us");
    DfaCompileUs = &Reg->histogram("regel_dfa_compile_us");
    DfaTierFetchUs = &Reg->histogram("regel_dfa_tier_fetch_us");
    SmtInferUs = &Reg->histogram("regel_smt_infer_us");
  }
  if (Cfg.DfaTier && (Cfg.TieredDfa || Cfg.TierClient)) {
    if (Cfg.TieredDfa) {
      TierStore = Cfg.TieredDfa;
    } else {
      TieredDfaStore::Config TC;
      TC.Tier = Cfg.TierClient;
      TC.Clk = Clk;
      TierStore = std::make_shared<TieredDfaStore>(Caches->Dfa, TC);
    }
  }
}

Engine::~Engine() {
  // WorkerPool's destructor drains the queues; jobs submitted before the
  // destructor all complete, their waiters wake, and their continuations
  // run (on this thread for tasks executed by the post-join drain).
}

JobPtr Engine::submit(JobRequest R) {
  // Expired queued jobs free their slots before this submission is judged
  // against the high-water mark (and before its queue-wait estimate).
  sweepExpiredQueued();
  Stats.jobSubmitted();
  if (Cfg.Observability && !R.Trace)
    R.Trace = Tracing->begin();
  JobPtr J(new SynthJob(std::move(R), Clk));
  if (obs::TraceContext *T = J->Req.Trace.get())
    T->spanEnvelope("submit", "job", J->SinceSubmit.startUs(), 0);
  const size_t NumTasks = J->Req.Sketches.size();
  if (NumTasks == 0) {
    // Nothing to search: complete the job on the spot (it never occupies
    // the queue, so admission control does not apply).
    {
      MutexLock Guard(J->M);
      J->Result.TotalMs = J->sinceSubmitMs();
    }
    Stats.jobCompleted(/*Solved=*/false, /*DeadlineExpired=*/false,
                       /*ResidencyExpired=*/false);
    observeCompletion(J, "empty", /*ForceKeepTrace=*/false);
    publishCompletion(J);
    return J;
  }
  if (Cfg.DeadlineShedding && J->Req.ResidencyBudgetMs > 0 &&
      cannotMeetBudget(J->Req.Pri, J->Req.ResidencyBudgetMs)) {
    // Deadline-aware shedding: per the estimator this job would expire
    // before (or while) running, so telling the client NOW is strictly
    // better than letting it burn queue residency first. Distinct from
    // the Rejected high-water path so clients can distinguish "queue
    // full, retry later" from "this deadline is hopeless at current
    // service times".
    Stats.jobShedOnArrival();
    {
      MutexLock Guard(J->M);
      J->Result.ShedOnArrival = true;
      J->Result.TotalMs = J->sinceSubmitMs();
    }
    observeCompletion(J, "shed", /*ForceKeepTrace=*/true);
    publishCompletion(J);
    return J;
  }
  if (!Queue.tryAdd(J, Cfg.MaxQueueDepth)) {
    // Backpressure: shed the submission instead of queueing it. tryAdd
    // checks the high-water mark and inserts atomically, so the bound
    // holds under concurrent submitters; the handle completes on the spot
    // so wait() returns (and continuations fire) immediately.
    Stats.jobRejected();
    {
      MutexLock Guard(J->M);
      J->Result.Rejected = true;
      J->Result.TotalMs = J->sinceSubmitMs();
    }
    observeCompletion(J, "rejected", /*ForceKeepTrace=*/true);
    publishCompletion(J);
    return J;
  }
  // Accepted: remember what the estimator predicted so completion can
  // record the estimate-vs-actual error histogram.
  J->EstAtSubmitMs = Estimator.estimateMs(J->Req.Pri);
  J->Remaining.store(static_cast<unsigned>(NumTasks),
                     std::memory_order_relaxed);
  const Priority Pri = J->Req.Pri;
  for (unsigned Rank = 0; Rank < NumTasks; ++Rank) {
    if (!Pool.submit([this, J, Rank] { runSketchTask(J, Rank); }, Pri)) {
      // Pool is shutting down; account the task as skipped so the job
      // still completes.
      Stats.taskSkipped();
      {
        MutexLock Guard(J->M);
        ++J->Result.TasksSkipped;
      }
      finishTask(J);
    }
  }
  if (Cfg.DeadlineShedding && J->Req.ResidencyBudgetMs > 0) {
    // Registered AFTER the fan-out loop, so a sweep can never expire a
    // job whose submit-failure accounting is still in flight — by the
    // time an entry exists, Result.TasksSkipped is final for every task
    // the pool refused, and expireQueued's reconciliation races nothing.
    // (If every task failed, the job is already finalized; the sweep's
    // Finalized exchange drops it.)
    {
      MutexLock Guard(HeapM);
      ResidencyHeap.push({J->residencyDeadlineUs(), J});
      NextResidencyDeadlineUs.store(ResidencyHeap.top().DeadlineUs,
                                    std::memory_order_release);
    }
    // Re-time any waitCompleted parked past this job's deadline. The
    // empty critical section orders the notify after a racing waiter has
    // either read the new deadline or entered its wait.
    { MutexLock Guard(CompletedM); }
    CompletedCV.notify_all();
  }
  return J;
}

std::vector<JobResult> Engine::runBatch(std::vector<JobRequest> Requests) {
  assert(!onPoolWorkerThread() &&
         "Engine::runBatch on an engine worker thread deadlocks the pool: "
         "it blocks on jobs only workers can run — submit() with "
         "onComplete instead");
  std::vector<JobPtr> Jobs;
  Jobs.reserve(Requests.size());
  for (JobRequest &R : Requests)
    Jobs.push_back(submit(std::move(R)));
  std::vector<JobResult> Results;
  Results.reserve(Jobs.size());
  for (const JobPtr &J : Jobs)
    Results.push_back(J->wait());
  return Results;
}

std::vector<JobPtr> Engine::pollCompleted() {
  // Polling is a sweep point: an event-loop consumer keeps expiry eager
  // even when every worker is pinned and no dispatch happens.
  sweepExpiredQueued();
  std::vector<JobPtr> Out;
  MutexLock Guard(CompletedM);
  Out.assign(std::make_move_iterator(Completed.begin()),
             std::make_move_iterator(Completed.end()));
  Completed.clear();
  return Out;
}

std::vector<JobPtr> Engine::waitCompleted(int64_t TimeoutMs) {
  assert(!onPoolWorkerThread() &&
         "Engine::waitCompleted blocks; poll from the event loop thread");
  // A queued job's SLA can lapse while we block, and the whole point of
  // eager expiry is that its completion (ResidencyExpired set) surfaces
  // here without waiting for a worker to free up. So each wait is timed
  // to whichever comes first: the caller's deadline or the earliest
  // registered residency deadline — no fixed-interval polling, and a
  // submission registering an earlier deadline mid-wait notifies the CV
  // to re-time. Everything runs on the engine clock, so the timeout is
  // virtual under a ManualClock.
  const int64_t DeadlineUs =
      Clk->nowUs() + std::max<int64_t>(TimeoutMs, 0) * 1000;
  for (;;) {
    sweepExpiredQueued();
    {
      UniqueLock Guard(CompletedM);
      if (Completed.empty()) {
        const int64_t NowUs = Clk->nowUs();
        if (NowUs >= DeadlineUs)
          return {};
        const int64_t WakeUs = std::min(
            DeadlineUs,
            NextResidencyDeadlineUs.load(std::memory_order_acquire));
        const int64_t LeftMs =
            std::max<int64_t>((WakeUs - NowUs + 999) / 1000, 1);
        Clk->waitFor(CompletedCV, Guard.native(), LeftMs,
                     [this] { return completionPendingPred(); });
      }
      if (!Completed.empty()) {
        std::vector<JobPtr> Out;
        Out.assign(std::make_move_iterator(Completed.begin()),
                   std::make_move_iterator(Completed.end()));
        Completed.clear();
        return Out;
      }
    }
    if (Clk->nowUs() >= DeadlineUs)
      return {};
  }
}

size_t Engine::completedPending() const {
  MutexLock Guard(CompletedM);
  return Completed.size();
}

void Engine::publishCompletion(const JobPtr &J) {
  // Ready and the completion-queue push are ONE critical section under
  // the job mutex: anything that can observe Ready (done(), waitFor, a
  // racing onComplete that will run its callback synchronously) can only
  // do so after the job is already pollable — so a continuation used as
  // an event-loop wakeup never fires into an empty queue. A poller that
  // wins the race the other way just blocks a beat on J->M in waitFor.
  // Notifications and continuations run outside every lock so they are
  // free to call back into the job or the engine.
  std::vector<SynthJob::Callback> CBs;
  JobResult Result;
  {
    MutexLock Guard(J->M);
    J->Ready = true;
    CBs.swap(J->Callbacks);
    Result = J->Result; // immutable once Ready; copied for the unlocked
                        // continuation calls below
    if (J->Req.EnqueueCompletion) {
      MutexLock QGuard(CompletedM);
      Completed.push_back(J);
    }
  }
  if (J->Req.EnqueueCompletion)
    CompletedCV.notify_all();
  J->CV.notify_all();
  for (SynthJob::Callback &CB : CBs)
    CB(Result);
}

bool Engine::cannotMeetBudget(Priority P, int64_t ResidencyBudgetMs) const {
  const double ExecEst = Estimator.estimateMs(P);
  if (ExecEst < 0)
    return false; // cold start: no samples for this class, never shed
  // Queue wait model: every in-flight job still needs (on average) one
  // blended service time, spread across the workers. Deliberately simple
  // and slightly conservative — it counts running jobs as a full service
  // time — because shedding errs towards accepting: only the job's OWN
  // class estimate can shed it (isolation), and the blended figure is
  // never negative here (a warm class implies a warm blend).
  const double BlendedEst = std::max(0.0, Estimator.blendedEstimateMs());
  const double WaitEst = BlendedEst * static_cast<double>(Queue.depth()) /
                         static_cast<double>(std::max(1u, Pool.threadCount()));
  return WaitEst + ExecEst > static_cast<double>(ResidencyBudgetMs);
}

void Engine::sweepExpiredQueued() {
  // Lock-free fast path for the hot dispatch loop: nothing can have
  // lapsed before the earliest registered deadline (INT64_MAX = empty
  // heap). The atomic is only advisory — a racing push is caught by the
  // next sweep point, and the publisher notifies waitCompleted itself.
  if (Clk->nowUs() <
      NextResidencyDeadlineUs.load(std::memory_order_acquire))
    return;
  std::vector<JobPtr> Lapsed;
  {
    MutexLock Guard(HeapM);
    const int64_t NowUs = Clk->nowUs();
    while (!ResidencyHeap.empty() &&
           ResidencyHeap.top().DeadlineUs <= NowUs) {
      if (JobPtr J = ResidencyHeap.top().J.lock())
        Lapsed.push_back(std::move(J));
      ResidencyHeap.pop();
    }
    NextResidencyDeadlineUs.store(ResidencyHeap.empty()
                                      ? INT64_MAX
                                      : ResidencyHeap.top().DeadlineUs,
                                  std::memory_order_release);
  }
  // Expiry (publication, continuations) runs outside HeapM so a
  // continuation is free to call back into submit or the completion API.
  for (const JobPtr &J : Lapsed)
    expireQueued(J);
}

void Engine::expireQueued(const JobPtr &J) {
  // Claim "expired before start": the CAS is the linearization point
  // against markStarted, so either this sweep wins (every task of the job
  // becomes a no-op) or some task already started (the running job will
  // clamp/expire itself through the lazy checks).
  int64_t Expected = -1;
  if (!J->ExecStartUs.compare_exchange_strong(Expected,
                                              SynthJob::ExpiredBeforeStartUs,
                                              std::memory_order_acq_rel))
    return;
  if (J->Finalized.exchange(true, std::memory_order_acq_rel))
    return; // belt: already published (e.g. every task failed to submit)
  J->Cancel.store(true, std::memory_order_relaxed);
  const uint64_t NumTasks = J->Req.Sketches.size();
  bool Solved;
  {
    MutexLock Guard(J->M);
    // Account every not-yet-accounted task as skipped (tasks dropped at
    // submit because the pool was shutting down are already counted), so
    // TasksRun + TasksSkipped still partitions the sketch list exactly.
    const uint64_t Unaccounted = NumTasks - J->Result.TasksSkipped;
    for (uint64_t I = 0; I < Unaccounted; ++I)
      Stats.taskSkipped();
    J->Result.TasksSkipped = NumTasks;
    J->Result.ResidencyExpired = true;
    J->Result.TotalMs = J->sinceSubmitMs();
    J->Result.QueueMs = J->Result.TotalMs; // never started: all queue wait
    J->Result.ExecMs = 0;
    Solved = J->Result.solved();
  }
  Stats.jobCompleted(Solved, /*DeadlineExpired=*/false,
                     /*ResidencyExpired=*/true);
  Stats.jobExpiredInQueue();
  Queue.remove(J.get());
  observeCompletion(J, "expired_in_queue", /*ForceKeepTrace=*/true);
  publishCompletion(J);
}

void Engine::runSketchTask(const JobPtr &J, unsigned Rank) {
  // Every dispatch sweeps the deadline heap first: queued jobs whose SLA
  // already lapsed complete right now, not when a worker reaches them.
  sweepExpiredQueued();
  if (!J->markStarted())
    return; // expired in queue: finalized by the sweep, nothing to do

  const JobRequest &Req = J->Req;
  bool DeadlineHit = false, ResidencyHit = false;
  // One residency sample decides both the skip branch and (below) the
  // budget clamp, so the two cannot disagree: remaining == 0 is exactly
  // the expired case, and a positive remainder is what the search gets.
  int64_t ResidencyLeftMs = 0;
  if (!J->Cancel.load(std::memory_order_relaxed)) {
    DeadlineHit = J->deadlineExpired();
    if (!DeadlineHit && Req.ResidencyBudgetMs > 0) {
      ResidencyLeftMs = J->residencyRemainingMs();
      ResidencyHit = ResidencyLeftMs == 0;
    }
    if (DeadlineHit || ResidencyHit)
      J->Cancel.store(true, std::memory_order_relaxed);
  }
  if (J->Cancel.load(std::memory_order_relaxed)) {
    // The task never ran a search: whatever set the cancel flag (sibling
    // success, client cancel, deadline, residency SLA) ends it here.
    Stats.taskSkipped();
    if (obs::TraceContext *T = J->Req.Trace.get())
      T->span("task_skipped", "task", Clk->nowUs(), 0, 1 + Rank);
    MutexLock Guard(J->M);
    ++J->Result.TasksSkipped;
    if (DeadlineHit)
      J->Result.DeadlineExpired = true;
    if (ResidencyHit)
      J->Result.ResidencyExpired = true;
    // The lock is released before finishTask below; finalize re-locks.
  } else {
    SynthConfig SC = Req.Synth;
    SC.TopK = Req.TopK;
    // With a tier attached, runs resolve DFAs through the tiered store:
    // run-local cache -> shard-local store -> tier fetch -> compile, with
    // concurrent cold misses deduped to one compile (single-flight).
    SC.SharedDfa =
        TierStore ? static_cast<DfaStore *>(TierStore.get()) : &Caches->Dfa;
    SC.SharedApprox = &Caches->Approx;
    SC.SharedSmt = Cfg.SmtMemo ? &Caches->Smt : nullptr;
    // Deterministic jobs must not stop mid-search because a sibling
    // succeeded; they still honour client cancel() and the job deadline
    // through the same flag (set above on deadline expiry).
    SC.CancelFlag = &J->Cancel;
    // The search's wall budget runs on the engine clock, so under a
    // ManualClock a search ends exactly when virtual time says so.
    SC.TimeSource = Clk.get();

    // Per-sketch slice of the job budget: explicit, or an equal split with
    // a floor so early (better-ranked) sketches keep a meaningful slice
    // for large sketch lists; always clamped to what is left of the job.
    int64_t PerSketch = Req.PerSketchBudgetMs;
    if (PerSketch <= 0 && Req.BudgetMs > 0)
      PerSketch = std::max<int64_t>(
          Req.BudgetMs / static_cast<int64_t>(Req.Sketches.size()), 250);
    SC.BudgetMs = PerSketch;
    if (Req.BudgetMs > 0) {
      int64_t RemainingMs =
          Req.BudgetMs - static_cast<int64_t>(J->execElapsedMs());
      RemainingMs = std::max<int64_t>(RemainingMs, 1);
      SC.BudgetMs = PerSketch > 0 ? std::min(PerSketch, RemainingMs)
                                  : RemainingMs;
    }
    // The residency SLA is submit-anchored: a search may not outlive what
    // is left of it, however much execution budget remains. The sample
    // taken above is positive on this branch (zero took the skip path),
    // so it can never masquerade as SynthConfig's "no budget".
    if (Req.ResidencyBudgetMs > 0) {
      SC.BudgetMs = SC.BudgetMs > 0 ? std::min(SC.BudgetMs, ResidencyLeftMs)
                                    : ResidencyLeftMs;
    }

    // Instrumentation sinks for the layers below the engine (synthesizer
    // and DFA cache). Stack-allocated: Synth.run is synchronous and the
    // probe must not outlive this frame.
    obs::TraceContext *T = J->Req.Trace.get();
    obs::SynthProbe Probe;
    const bool Observe = Cfg.Observability;
    if (Observe) {
      Probe.Clk = Clk.get();
      Probe.DfaCompileUs = DfaCompileUs;
      Probe.DfaTierFetchUs = TierStore ? DfaTierFetchUs : nullptr;
      Probe.SmtInferUs = SmtInferUs;
      Probe.Trace = T;
      Probe.Tid = 1 + Rank;
      SC.Probe = &Probe;
    }
    const int64_t TaskStartUs = Observe ? Clk->nowUs() : 0;

    Synthesizer Synth(SC);
    SynthResult SR = Synth.run(Req.Sketches[Rank], Req.E);
    Stats.taskRan();
    Stats.addSynth(SR.Stats);
    if (SR.Cancelled)
      Stats.taskStopped();
    if (Observe) {
      const int64_t TaskDurUs = Clk->nowUs() - TaskStartUs;
      TaskExecUs->record(static_cast<uint64_t>(TaskDurUs));
      if (T) {
        obs::Span S;
        S.Name = "task";
        S.Cat = "task";
        S.StartUs = TaskStartUs;
        S.DurUs = TaskDurUs;
        S.Tid = 1 + Rank;
        S.Args = {{"rank", std::to_string(Rank)},
                  {"solutions", std::to_string(SR.Solutions.size())},
                  {"pops", std::to_string(SR.Stats.Pops)},
                  {"dfa_local_hits", std::to_string(SR.Stats.DfaLocalHits)},
                  {"dfa_shared_hits", std::to_string(SR.Stats.DfaSharedHits)},
                  {"dfa_compiles", std::to_string(SR.Stats.DfaCompiles)},
                  {"smt_interval_evals",
                   std::to_string(SR.Stats.SmtIntervalEvals)},
                  {"smt_solves", std::to_string(SR.Stats.SmtSolves)},
                  {"smt_cache_hits", std::to_string(SR.Stats.SmtCacheHits)},
                  {"cancelled", SR.Cancelled ? "true" : "false"}};
        T->span(std::move(S));
      }
    }

    MutexLock Guard(J->M);
    ++J->Result.TasksRun;
    if (SR.Cancelled)
      ++J->Result.TasksStopped; // ran, but was stopped mid-search
    if (Req.Deterministic) {
      J->PerSketch[Rank] = std::move(SR.Solutions);
    } else {
      for (RegexPtr &R : SR.Solutions) {
        // A straggler that finished its search before noticing the cancel
        // flag must not push past the TopK contract.
        if (J->Result.Answers.size() >= Req.TopK)
          break;
        if (!J->SeenHashes.insert(R->hash()).second)
          continue;
        J->Result.Answers.push_back({std::move(R), Rank, Req.Sketches[Rank]});
        if (J->Result.Answers.size() >= Req.TopK) {
          // Enough answers: cancel sibling tasks (queued ones will skip,
          // running ones stop at their next deadline poll).
          J->Cancel.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
  }

  finishTask(J);
}

void Engine::finishTask(const JobPtr &J) {
  if (J->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
    finalize(J);
}

void Engine::finalize(const JobPtr &J) {
  if (J->Finalized.exchange(true, std::memory_order_acq_rel))
    return; // already published by the deadline sweep's expire path
  // Everything observable (stats, queue depth) is updated BEFORE the job
  // is published, so a waiter or continuation that observes completion
  // sees the completed state.
  bool Solved, DeadlineExpired, ResidencyExpired, RanSearch;
  uint64_t NumAnswers;
  double ExecMs;
  {
    MutexLock Guard(J->M);
    if (J->Req.Deterministic) {
      // Merge per-rank buckets in rank order: the same answer set (and
      // order) a single worker produces, whatever the thread count.
      for (unsigned Rank = 0;
           Rank < J->PerSketch.size() &&
           J->Result.Answers.size() < J->Req.TopK;
           ++Rank) {
        for (RegexPtr &R : J->PerSketch[Rank]) {
          if (!J->SeenHashes.insert(R->hash()).second)
            continue;
          J->Result.Answers.push_back(
              {std::move(R), Rank, J->Req.Sketches[Rank]});
          if (J->Result.Answers.size() >= J->Req.TopK)
            break;
        }
      }
      J->PerSketch.clear();
    }
    J->Result.TotalMs = J->SinceSubmit.elapsedMs();
    J->Result.ExecMs = J->execElapsedMs();
    J->Result.QueueMs = J->Result.TotalMs - J->Result.ExecMs;
    if (J->deadlineExpired() && !J->Result.solved())
      J->Result.DeadlineExpired = true;
    if (J->residencyExpired() && !J->Result.solved())
      J->Result.ResidencyExpired = true;
    Solved = J->Result.solved();
    DeadlineExpired = J->Result.DeadlineExpired;
    ResidencyExpired = J->Result.ResidencyExpired;
    NumAnswers = J->Result.Answers.size();
    ExecMs = J->Result.ExecMs;
    RanSearch = J->Result.TasksRun > 0;
  }
  // Feed the shedding estimator only with jobs that actually ran a
  // search. Truncated runs (deadline/SLA clamp) still count — the time
  // was spent — but jobs whose tasks all skipped (client cancel, expiry
  // races) would inject ~0ms samples that drag the EWMA towards zero and
  // quietly disable shedding; a burst of abandoned connections must not
  // teach the estimator that service is free.
  if (RanSearch)
    Estimator.recordSample(J->Req.Pri, ExecMs);
  Stats.jobCompleted(Solved, DeadlineExpired, ResidencyExpired);
  Stats.solutionsFound(NumAnswers);
  Queue.remove(J.get());
  const char *Verdict = Solved              ? "solved"
                        : DeadlineExpired   ? "deadline_expired"
                        : ResidencyExpired  ? "residency_expired"
                                            : "no_solution";
  observeCompletion(J, Verdict,
                    /*ForceKeepTrace=*/!Solved &&
                        (DeadlineExpired || ResidencyExpired));
  publishCompletion(J);
}

StatsSnapshot Engine::snapshot() const {
  StatsSnapshot S;
  Stats.fill(S);
  S.TasksStolen = Pool.tasksStolen();
  S.TasksRunInteractive = Pool.tasksRun(Priority::Interactive);
  S.TasksRunBatch = Pool.tasksRun(Priority::Batch);
  S.TasksRunBackground = Pool.tasksRun(Priority::Background);
  S.CompletionsPending = completedPending();
  if (TierStore) {
    S.DfaTierHits = TierStore->tierHits();
    S.DfaTierMisses = TierStore->tierMisses();
    S.DfaTierPuts = TierStore->tierPuts();
    S.DfaTierPutsSkipped = TierStore->tierPutsSkipped();
    S.DfaFlightServed = TierStore->flightServed();
    S.DfaFlightTimeouts = TierStore->flightTimeouts();
  }
  S.DfaStoreHits = Caches->Dfa.hits();
  S.DfaStoreMisses = Caches->Dfa.misses();
  S.DfaStoreSize = Caches->Dfa.size();
  S.DfaStoreCost = Caches->Dfa.costUnits();
  S.DfaStoreEvictions = Caches->Dfa.evictions();
  S.ApproxStoreHits = Caches->Approx.hits();
  S.ApproxStoreMisses = Caches->Approx.misses();
  S.ApproxStoreSize = Caches->Approx.size();
  S.ApproxStoreEvictions = Caches->Approx.evictions();
  S.SmtStoreHits = Caches->Smt.hits();
  S.SmtStoreImpliedHits = Caches->Smt.impliedHits();
  S.SmtStoreMisses = Caches->Smt.misses();
  S.SmtStoreSize = Caches->Smt.size();
  S.SmtStoreEvictions = Caches->Smt.evictions();
  const ServiceTimeEstimator::Snapshot E = Estimator.snapshot();
  S.EstimatorInteractiveMs =
      E.EstMs[static_cast<unsigned>(Priority::Interactive)];
  S.EstimatorBatchMs = E.EstMs[static_cast<unsigned>(Priority::Batch)];
  S.EstimatorBackgroundMs =
      E.EstMs[static_cast<unsigned>(Priority::Background)];
  S.EstimatorBlendedMs = E.BlendedMs;
  S.EstimatorSamplesInteractive =
      E.Samples[static_cast<unsigned>(Priority::Interactive)];
  S.EstimatorSamplesBatch = E.Samples[static_cast<unsigned>(Priority::Batch)];
  S.EstimatorSamplesBackground =
      E.Samples[static_cast<unsigned>(Priority::Background)];
  return S;
}

void Engine::observeCompletion(const JobPtr &J, const char *Verdict,
                               bool ForceKeepTrace) {
  // Called after the result is final and before publishCompletion, on
  // every completion path (normal, expired-in-queue, and the submit-time
  // fast paths), so this is the one place job-level latency histograms
  // and job/queue/exec spans are recorded.
  double QueueMs, ExecMs, TotalMs;
  bool Ran, Accepted;
  {
    MutexLock Guard(J->M);
    QueueMs = J->Result.QueueMs;
    ExecMs = J->Result.ExecMs;
    TotalMs = J->Result.TotalMs;
    Ran = J->Result.TasksRun > 0;
    // Rejected/shed submissions and empty jobs never occupied the queue;
    // their (near-zero) latencies would only distort the accepted-job
    // histograms. Their counters are tracked separately.
    Accepted = !J->Result.Rejected && !J->Result.ShedOnArrival &&
               !J->Req.Sketches.empty();
  }
  if (Cfg.Observability && Accepted) {
    JobHists &H = PerPri[static_cast<unsigned>(J->Req.Pri)];
    H.QueueUs->recordMs(QueueMs);
    H.ExecUs->recordMs(ExecMs);
    H.TotalUs->recordMs(TotalMs);
    // Estimate-vs-actual absolute error, only when both sides exist (the
    // class was warm at submit and the job really ran a search).
    if (Ran && J->EstAtSubmitMs >= 0)
      H.EstErrUs->recordMs(std::fabs(J->EstAtSubmitMs - ExecMs));
  }
  if (const std::shared_ptr<obs::TraceContext> &T = J->Req.Trace) {
    const int64_t SubmitUs = J->SinceSubmit.startUs();
    if (Accepted) {
      T->spanEnvelope("queue", "job", SubmitUs,
              static_cast<int64_t>(QueueMs * 1000.0 + 0.5));
      const int64_t ExecRelUs =
          J->ExecStartUs.load(std::memory_order_acquire);
      if (ExecRelUs >= 0)
        T->spanEnvelope("exec", "job", SubmitUs + ExecRelUs,
                static_cast<int64_t>(ExecMs * 1000.0 + 0.5));
    }
    T->spanEnvelope("job", "job", SubmitUs,
            static_cast<int64_t>(TotalMs * 1000.0 + 0.5));
    T->setVerdict(Verdict);
    // Advertise the trace id only when the ring retained the trace: a
    // trace= the server cannot serve is worse than none.
    if (Tracing->finish(T, ForceKeepTrace)) {
      MutexLock Guard(J->M);
      J->Result.TraceId = T->id();
    }
  }
}

void Engine::mirrorSnapshot() const {
  const StatsSnapshot S = snapshot();
  obs::Registry &R = *Reg;
  R.counter("regel_jobs_submitted_total").set(S.JobsSubmitted);
  R.counter("regel_jobs_completed_total").set(S.JobsCompleted);
  R.counter("regel_jobs_solved_total").set(S.JobsSolved);
  R.counter("regel_jobs_rejected_total").set(S.JobsRejected);
  R.counter("regel_jobs_shed_on_arrival_total").set(S.JobsShedOnArrival);
  R.counter("regel_jobs_expired_in_queue_total").set(S.JobsExpiredInQueue);
  R.counter("regel_jobs_deadline_expired_total").set(S.JobsDeadlineExpired);
  R.counter("regel_jobs_residency_expired_total")
      .set(S.JobsResidencyExpired);
  R.counter("regel_tasks_run_total").set(S.TasksRun);
  R.counter("regel_tasks_skipped_total").set(S.TasksSkipped);
  R.counter("regel_tasks_stopped_total").set(S.TasksStopped);
  R.counter("regel_tasks_stolen_total").set(S.TasksStolen);
  R.counter("regel_pool_tasks_run_total",
            priLabel(Priority::Interactive))
      .set(S.TasksRunInteractive);
  R.counter("regel_pool_tasks_run_total", priLabel(Priority::Batch))
      .set(S.TasksRunBatch);
  R.counter("regel_pool_tasks_run_total", priLabel(Priority::Background))
      .set(S.TasksRunBackground);
  R.counter("regel_solutions_found_total").set(S.SolutionsFound);
  R.counter("regel_synth_pops_total").set(S.Pops);
  R.counter("regel_synth_expansions_total").set(S.Expansions);
  R.counter("regel_synth_pruned_infeasible_total").set(S.PrunedInfeasible);
  R.counter("regel_synth_concrete_checked_total").set(S.ConcreteChecked);
  R.counter("regel_smt_interval_evals_total").set(S.SmtIntervalEvals);
  R.counter("regel_smt_solves_total").set(S.SmtSolves);
  R.counter("regel_smt_unsat_short_circuits_total")
      .set(S.SmtUnsatShortCircuits);
  R.counter("regel_dfa_gets_total").set(S.DfaGets);
  R.counter("regel_dfa_local_hits_total").set(S.DfaLocalHits);
  R.counter("regel_dfa_shared_hits_total").set(S.DfaSharedHits);
  R.counter("regel_dfa_compiles_total").set(S.DfaCompiles);
  R.counter("regel_dfa_tier_hits_total").set(S.DfaTierHits);
  R.counter("regel_dfa_tier_misses_total").set(S.DfaTierMisses);
  R.counter("regel_dfa_tier_puts_total").set(S.DfaTierPuts);
  R.counter("regel_dfa_tier_puts_skipped_total").set(S.DfaTierPutsSkipped);
  R.counter("regel_dfa_flight_served_total").set(S.DfaFlightServed);
  R.counter("regel_dfa_flight_timeouts_total").set(S.DfaFlightTimeouts);
  R.counter("regel_synth_time_us_total")
      .set(static_cast<uint64_t>(S.SynthMsTotal * 1000.0));
  R.counter("regel_dfa_store_hits_total").set(S.DfaStoreHits);
  R.counter("regel_dfa_store_misses_total").set(S.DfaStoreMisses);
  R.counter("regel_dfa_store_evictions_total").set(S.DfaStoreEvictions);
  R.counter("regel_approx_store_hits_total").set(S.ApproxStoreHits);
  R.counter("regel_approx_store_misses_total").set(S.ApproxStoreMisses);
  R.counter("regel_approx_store_evictions_total")
      .set(S.ApproxStoreEvictions);
  R.counter("regel_smt_cache_hits_total").set(S.SmtStoreHits);
  R.counter("regel_smt_cache_implied_hits_total").set(S.SmtStoreImpliedHits);
  R.counter("regel_smt_cache_misses_total").set(S.SmtStoreMisses);
  R.counter("regel_smt_cache_evictions_total").set(S.SmtStoreEvictions);
  R.gauge("regel_queue_depth_jobs")
      .set(static_cast<int64_t>(queueDepth()));
  R.gauge("regel_completions_pending")
      .set(static_cast<int64_t>(S.CompletionsPending));
  R.gauge("regel_worker_threads")
      .set(static_cast<int64_t>(Pool.threadCount()));
  R.gauge("regel_dfa_store_size_entries")
      .set(static_cast<int64_t>(S.DfaStoreSize));
  R.gauge("regel_dfa_store_cost_units")
      .set(static_cast<int64_t>(S.DfaStoreCost));
  R.gauge("regel_approx_store_size_entries")
      .set(static_cast<int64_t>(S.ApproxStoreSize));
  R.gauge("regel_smt_cache_size_entries")
      .set(static_cast<int64_t>(S.SmtStoreSize));
  // Estimator state in integer us (-1 = cold). A federated SUM of these
  // gauges is meaningless — readers must consume them per backend.
  auto EstUs = [](double Ms) {
    return Ms < 0 ? int64_t(-1) : static_cast<int64_t>(Ms * 1000.0);
  };
  R.gauge("regel_estimator_est_us", priLabel(Priority::Interactive))
      .set(EstUs(S.EstimatorInteractiveMs));
  R.gauge("regel_estimator_est_us", priLabel(Priority::Batch))
      .set(EstUs(S.EstimatorBatchMs));
  R.gauge("regel_estimator_est_us", priLabel(Priority::Background))
      .set(EstUs(S.EstimatorBackgroundMs));
  R.gauge("regel_estimator_blended_est_us")
      .set(EstUs(S.EstimatorBlendedMs));
  R.counter("regel_estimator_samples_total",
            priLabel(Priority::Interactive))
      .set(S.EstimatorSamplesInteractive);
  R.counter("regel_estimator_samples_total", priLabel(Priority::Batch))
      .set(S.EstimatorSamplesBatch);
  R.counter("regel_estimator_samples_total",
            priLabel(Priority::Background))
      .set(S.EstimatorSamplesBackground);
}

std::string Engine::metricsText() const {
  mirrorSnapshot();
  return Reg->renderText();
}
