//===- engine/Engine.cpp --------------------------------------------------===//

#include "engine/Engine.h"

#include "synth/Synthesizer.h"

#include <algorithm>

using namespace regel;
using namespace regel::engine;

Engine::Engine(EngineConfig C)
    : Cfg(std::move(C)),
      Caches(Cfg.Caches ? Cfg.Caches
                        : std::make_shared<SharedCaches>(Cfg.CacheShards,
                                                         Cfg.DfaCacheLimits,
                                                         Cfg.ApproxCacheLimits)),
      Pool(std::max(1u, Cfg.Threads)) {}

Engine::~Engine() {
  // WorkerPool's destructor drains the queues; jobs submitted before the
  // destructor all complete and their waiters wake.
}

JobPtr Engine::submit(JobRequest R) {
  Stats.jobSubmitted();
  JobPtr J(new SynthJob(std::move(R)));
  const size_t NumTasks = J->Req.Sketches.size();
  if (NumTasks == 0) {
    // Nothing to search: complete the job on the spot (it never occupies
    // the queue, so admission control does not apply).
    std::lock_guard<std::mutex> Guard(J->M);
    J->Result.TotalMs = J->sinceSubmitMs();
    J->Ready = true;
    J->CV.notify_all();
    Stats.jobCompleted(/*Solved=*/false, /*DeadlineExpired=*/false,
                       /*ResidencyExpired=*/false);
    return J;
  }
  if (!Queue.tryAdd(J, Cfg.MaxQueueDepth)) {
    // Backpressure: shed the submission instead of queueing it. tryAdd
    // checks the high-water mark and inserts atomically, so the bound
    // holds under concurrent submitters; the handle completes on the spot
    // so wait() returns immediately.
    Stats.jobRejected();
    std::lock_guard<std::mutex> Guard(J->M);
    J->Result.Rejected = true;
    J->Result.TotalMs = J->sinceSubmitMs();
    J->Ready = true;
    J->CV.notify_all();
    return J;
  }
  J->Remaining.store(static_cast<unsigned>(NumTasks),
                     std::memory_order_relaxed);
  for (unsigned Rank = 0; Rank < NumTasks; ++Rank) {
    if (!Pool.submit([this, J, Rank] { runSketchTask(J, Rank); })) {
      // Pool is shutting down; account the task as skipped so the job
      // still completes.
      Stats.taskSkipped();
      {
        std::lock_guard<std::mutex> Guard(J->M);
        ++J->Result.TasksSkipped;
      }
      finishTask(J);
    }
  }
  return J;
}

std::vector<JobResult> Engine::runBatch(std::vector<JobRequest> Requests) {
  std::vector<JobPtr> Jobs;
  Jobs.reserve(Requests.size());
  for (JobRequest &R : Requests)
    Jobs.push_back(submit(std::move(R)));
  std::vector<JobResult> Results;
  Results.reserve(Jobs.size());
  for (const JobPtr &J : Jobs)
    Results.push_back(J->wait());
  return Results;
}

void Engine::runSketchTask(const JobPtr &J, unsigned Rank) {
  J->markStarted();

  const JobRequest &Req = J->Req;
  bool DeadlineHit = false, ResidencyHit = false;
  if (!J->Cancel.load(std::memory_order_relaxed)) {
    DeadlineHit = J->deadlineExpired();
    ResidencyHit = !DeadlineHit && J->residencyExpired();
    if (DeadlineHit || ResidencyHit)
      J->Cancel.store(true, std::memory_order_relaxed);
  }
  if (J->Cancel.load(std::memory_order_relaxed)) {
    // The task never ran a search: whatever set the cancel flag (sibling
    // success, client cancel, deadline, residency SLA) ends it here.
    Stats.taskSkipped();
    std::lock_guard<std::mutex> Guard(J->M);
    ++J->Result.TasksSkipped;
    if (DeadlineHit)
      J->Result.DeadlineExpired = true;
    if (ResidencyHit)
      J->Result.ResidencyExpired = true;
    // The lock is released before finishTask below; finalize re-locks.
  } else {
    SynthConfig SC = Req.Synth;
    SC.TopK = Req.TopK;
    SC.SharedDfa = &Caches->Dfa;
    SC.SharedApprox = &Caches->Approx;
    // Deterministic jobs must not stop mid-search because a sibling
    // succeeded; they still honour client cancel() and the job deadline
    // through the same flag (set above on deadline expiry).
    SC.CancelFlag = &J->Cancel;

    // Per-sketch slice of the job budget: explicit, or an equal split with
    // a floor so early (better-ranked) sketches keep a meaningful slice
    // for large sketch lists; always clamped to what is left of the job.
    int64_t PerSketch = Req.PerSketchBudgetMs;
    if (PerSketch <= 0 && Req.BudgetMs > 0)
      PerSketch = std::max<int64_t>(
          Req.BudgetMs / static_cast<int64_t>(Req.Sketches.size()), 250);
    SC.BudgetMs = PerSketch;
    if (Req.BudgetMs > 0) {
      int64_t RemainingMs =
          Req.BudgetMs - static_cast<int64_t>(J->execElapsedMs());
      RemainingMs = std::max<int64_t>(RemainingMs, 1);
      SC.BudgetMs = PerSketch > 0 ? std::min(PerSketch, RemainingMs)
                                  : RemainingMs;
    }
    // The residency SLA is submit-anchored: a search may not outlive what
    // is left of it, however much execution budget remains.
    if (Req.ResidencyBudgetMs > 0) {
      int64_t ResidencyLeft = J->residencyRemainingMs();
      SC.BudgetMs = SC.BudgetMs > 0 ? std::min(SC.BudgetMs, ResidencyLeft)
                                    : ResidencyLeft;
    }

    Synthesizer Synth(SC);
    SynthResult SR = Synth.run(Req.Sketches[Rank], Req.E);
    Stats.taskRan();
    Stats.addSynth(SR.Stats);
    if (SR.Cancelled)
      Stats.taskStopped();

    std::lock_guard<std::mutex> Guard(J->M);
    ++J->Result.TasksRun;
    if (SR.Cancelled)
      ++J->Result.TasksStopped; // ran, but was stopped mid-search
    if (Req.Deterministic) {
      J->PerSketch[Rank] = std::move(SR.Solutions);
    } else {
      for (RegexPtr &R : SR.Solutions) {
        // A straggler that finished its search before noticing the cancel
        // flag must not push past the TopK contract.
        if (J->Result.Answers.size() >= Req.TopK)
          break;
        if (!J->SeenHashes.insert(R->hash()).second)
          continue;
        J->Result.Answers.push_back({std::move(R), Rank, Req.Sketches[Rank]});
        if (J->Result.Answers.size() >= Req.TopK) {
          // Enough answers: cancel sibling tasks (queued ones will skip,
          // running ones stop at their next deadline poll).
          J->Cancel.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
  }

  finishTask(J);
}

void Engine::finishTask(const JobPtr &J) {
  if (J->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
    finalize(J);
}

void Engine::finalize(const JobPtr &J) {
  // Everything observable (stats, queue depth) is updated BEFORE Ready is
  // signalled, so a waiter that wakes from wait() sees the completed
  // state.
  bool Solved, DeadlineExpired, ResidencyExpired;
  uint64_t NumAnswers;
  {
    std::lock_guard<std::mutex> Guard(J->M);
    if (J->Req.Deterministic) {
      // Merge per-rank buckets in rank order: the same answer set (and
      // order) a single worker produces, whatever the thread count.
      for (unsigned Rank = 0;
           Rank < J->PerSketch.size() &&
           J->Result.Answers.size() < J->Req.TopK;
           ++Rank) {
        for (RegexPtr &R : J->PerSketch[Rank]) {
          if (!J->SeenHashes.insert(R->hash()).second)
            continue;
          J->Result.Answers.push_back(
              {std::move(R), Rank, J->Req.Sketches[Rank]});
          if (J->Result.Answers.size() >= J->Req.TopK)
            break;
        }
      }
      J->PerSketch.clear();
    }
    J->Result.TotalMs = J->SinceSubmit.elapsedMs();
    J->Result.ExecMs = J->execElapsedMs();
    J->Result.QueueMs = J->Result.TotalMs - J->Result.ExecMs;
    if (J->deadlineExpired() && !J->Result.solved())
      J->Result.DeadlineExpired = true;
    if (J->residencyExpired() && !J->Result.solved())
      J->Result.ResidencyExpired = true;
    Solved = J->Result.solved();
    DeadlineExpired = J->Result.DeadlineExpired;
    ResidencyExpired = J->Result.ResidencyExpired;
    NumAnswers = J->Result.Answers.size();
  }
  Stats.jobCompleted(Solved, DeadlineExpired, ResidencyExpired);
  Stats.solutionsFound(NumAnswers);
  Queue.remove(J.get());
  {
    std::lock_guard<std::mutex> Guard(J->M);
    J->Ready = true;
  }
  J->CV.notify_all();
}

StatsSnapshot Engine::snapshot() const {
  StatsSnapshot S;
  Stats.fill(S);
  S.TasksStolen = Pool.tasksStolen();
  S.DfaStoreHits = Caches->Dfa.hits();
  S.DfaStoreMisses = Caches->Dfa.misses();
  S.DfaStoreSize = Caches->Dfa.size();
  S.DfaStoreCost = Caches->Dfa.costUnits();
  S.DfaStoreEvictions = Caches->Dfa.evictions();
  S.ApproxStoreHits = Caches->Approx.hits();
  S.ApproxStoreMisses = Caches->Approx.misses();
  S.ApproxStoreSize = Caches->Approx.size();
  S.ApproxStoreEvictions = Caches->Approx.evictions();
  return S;
}
