//===- engine/Stats.cpp ---------------------------------------------------===//

#include "engine/Stats.h"

#include <cstdio>

using namespace regel::engine;

std::string StatsSnapshot::toJson() const {
  char Buf[4608];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"jobs\":{\"submitted\":%llu,\"completed\":%llu,\"solved\":%llu,"
      "\"rejected\":%llu,\"shed_on_arrival\":%llu,\"expired_in_queue\":%llu,"
      "\"deadline_expired\":%llu,"
      "\"residency_expired\":%llu},"
      "\"tasks\":{\"run\":%llu,\"skipped\":%llu,\"stopped\":%llu,"
      "\"stolen\":%llu,\"run_interactive\":%llu,\"run_batch\":%llu,"
      "\"run_background\":%llu},"
      "\"completions_pending\":%llu,"
      "\"solutions\":%llu,"
      "\"synth\":{\"pops\":%llu,\"expansions\":%llu,\"pruned\":%llu,"
      "\"checked\":%llu,\"smt_interval_evals\":%llu,\"smt_solves\":%llu,"
      "\"smt_cache_hits\":%llu,\"smt_unsat_short_circuits\":%llu,"
      "\"dfa_gets\":%llu,\"dfa_local_hits\":%llu,"
      "\"dfa_shared_hits\":%llu,"
      "\"dfa_compiles\":%llu,\"total_ms\":%.1f},"
      "\"dfa_tier\":{\"hits\":%llu,\"misses\":%llu,\"puts\":%llu,"
      "\"puts_skipped\":%llu,\"flight_served\":%llu,"
      "\"flight_timeouts\":%llu},"
      "\"dfa_store\":{\"hits\":%llu,\"misses\":%llu,\"size\":%llu,"
      "\"cost\":%llu,\"evictions\":%llu},"
      "\"approx_store\":{\"hits\":%llu,\"misses\":%llu,\"size\":%llu,"
      "\"evictions\":%llu},"
      "\"smt_store\":{\"hits\":%llu,\"implied_hits\":%llu,\"misses\":%llu,"
      "\"size\":%llu,\"evictions\":%llu},"
      "\"estimator\":{\"interactive_ms\":%.2f,\"batch_ms\":%.2f,"
      "\"background_ms\":%.2f,\"blended_ms\":%.2f,"
      "\"samples_interactive\":%llu,\"samples_batch\":%llu,"
      "\"samples_background\":%llu}}",
      (unsigned long long)JobsSubmitted, (unsigned long long)JobsCompleted,
      (unsigned long long)JobsSolved, (unsigned long long)JobsRejected,
      (unsigned long long)JobsShedOnArrival,
      (unsigned long long)JobsExpiredInQueue,
      (unsigned long long)JobsDeadlineExpired,
      (unsigned long long)JobsResidencyExpired, (unsigned long long)TasksRun,
      (unsigned long long)TasksSkipped, (unsigned long long)TasksStopped,
      (unsigned long long)TasksStolen,
      (unsigned long long)TasksRunInteractive,
      (unsigned long long)TasksRunBatch,
      (unsigned long long)TasksRunBackground,
      (unsigned long long)CompletionsPending,
      (unsigned long long)SolutionsFound,
      (unsigned long long)Pops, (unsigned long long)Expansions,
      (unsigned long long)PrunedInfeasible, (unsigned long long)ConcreteChecked,
      (unsigned long long)SmtIntervalEvals, (unsigned long long)SmtSolves,
      (unsigned long long)SmtCacheHits,
      (unsigned long long)SmtUnsatShortCircuits,
      (unsigned long long)DfaGets,
      (unsigned long long)DfaLocalHits, (unsigned long long)DfaSharedHits,
      (unsigned long long)DfaCompiles, SynthMsTotal,
      (unsigned long long)DfaTierHits, (unsigned long long)DfaTierMisses,
      (unsigned long long)DfaTierPuts,
      (unsigned long long)DfaTierPutsSkipped,
      (unsigned long long)DfaFlightServed,
      (unsigned long long)DfaFlightTimeouts,
      (unsigned long long)DfaStoreHits, (unsigned long long)DfaStoreMisses,
      (unsigned long long)DfaStoreSize, (unsigned long long)DfaStoreCost,
      (unsigned long long)DfaStoreEvictions,
      (unsigned long long)ApproxStoreHits,
      (unsigned long long)ApproxStoreMisses,
      (unsigned long long)ApproxStoreSize,
      (unsigned long long)ApproxStoreEvictions,
      (unsigned long long)SmtStoreHits,
      (unsigned long long)SmtStoreImpliedHits,
      (unsigned long long)SmtStoreMisses,
      (unsigned long long)SmtStoreSize,
      (unsigned long long)SmtStoreEvictions,
      EstimatorInteractiveMs, EstimatorBatchMs, EstimatorBackgroundMs,
      EstimatorBlendedMs,
      (unsigned long long)EstimatorSamplesInteractive,
      (unsigned long long)EstimatorSamplesBatch,
      (unsigned long long)EstimatorSamplesBackground);
  return Buf;
}

void StatsSnapshot::merge(const StatsSnapshot &O) {
  JobsSubmitted += O.JobsSubmitted;
  JobsCompleted += O.JobsCompleted;
  JobsSolved += O.JobsSolved;
  JobsRejected += O.JobsRejected;
  JobsShedOnArrival += O.JobsShedOnArrival;
  JobsExpiredInQueue += O.JobsExpiredInQueue;
  JobsDeadlineExpired += O.JobsDeadlineExpired;
  JobsResidencyExpired += O.JobsResidencyExpired;
  TasksRun += O.TasksRun;
  TasksSkipped += O.TasksSkipped;
  TasksStopped += O.TasksStopped;
  TasksStolen += O.TasksStolen;
  TasksRunInteractive += O.TasksRunInteractive;
  TasksRunBatch += O.TasksRunBatch;
  TasksRunBackground += O.TasksRunBackground;
  CompletionsPending += O.CompletionsPending;
  SolutionsFound += O.SolutionsFound;
  Pops += O.Pops;
  Expansions += O.Expansions;
  PrunedInfeasible += O.PrunedInfeasible;
  ConcreteChecked += O.ConcreteChecked;
  SmtIntervalEvals += O.SmtIntervalEvals;
  SmtSolves += O.SmtSolves;
  SmtCacheHits += O.SmtCacheHits;
  SmtUnsatShortCircuits += O.SmtUnsatShortCircuits;
  DfaGets += O.DfaGets;
  DfaLocalHits += O.DfaLocalHits;
  DfaSharedHits += O.DfaSharedHits;
  DfaCompiles += O.DfaCompiles;
  SynthMsTotal += O.SynthMsTotal;
  DfaTierHits += O.DfaTierHits;
  DfaTierMisses += O.DfaTierMisses;
  DfaTierPuts += O.DfaTierPuts;
  DfaTierPutsSkipped += O.DfaTierPutsSkipped;
  DfaFlightServed += O.DfaFlightServed;
  DfaFlightTimeouts += O.DfaFlightTimeouts;
  DfaStoreHits += O.DfaStoreHits;
  DfaStoreMisses += O.DfaStoreMisses;
  DfaStoreSize += O.DfaStoreSize;
  DfaStoreCost += O.DfaStoreCost;
  DfaStoreEvictions += O.DfaStoreEvictions;
  ApproxStoreHits += O.ApproxStoreHits;
  ApproxStoreMisses += O.ApproxStoreMisses;
  ApproxStoreSize += O.ApproxStoreSize;
  ApproxStoreEvictions += O.ApproxStoreEvictions;
  SmtStoreHits += O.SmtStoreHits;
  SmtStoreImpliedHits += O.SmtStoreImpliedHits;
  SmtStoreMisses += O.SmtStoreMisses;
  SmtStoreSize += O.SmtStoreSize;
  SmtStoreEvictions += O.SmtStoreEvictions;

  // Estimator EWMAs combine sample-weighted; a cold side (negative
  // estimate / zero samples) contributes nothing, so one warm shard's
  // figure survives the merge instead of being averaged toward -1.
  auto Blend = [](double &Ms, uint64_t Samples, double OMs,
                  uint64_t OSamples) {
    const bool Warm = Ms >= 0 && Samples > 0;
    const bool OWarm = OMs >= 0 && OSamples > 0;
    if (!Warm) {
      Ms = OWarm ? OMs : Ms;
      return;
    }
    if (OWarm)
      Ms = (Ms * static_cast<double>(Samples) +
            OMs * static_cast<double>(OSamples)) /
           static_cast<double>(Samples + OSamples);
  };
  Blend(EstimatorInteractiveMs, EstimatorSamplesInteractive,
        O.EstimatorInteractiveMs, O.EstimatorSamplesInteractive);
  Blend(EstimatorBatchMs, EstimatorSamplesBatch, O.EstimatorBatchMs,
        O.EstimatorSamplesBatch);
  Blend(EstimatorBackgroundMs, EstimatorSamplesBackground,
        O.EstimatorBackgroundMs, O.EstimatorSamplesBackground);
  const uint64_t Samples = EstimatorSamplesInteractive +
                           EstimatorSamplesBatch + EstimatorSamplesBackground;
  const uint64_t OSamples = O.EstimatorSamplesInteractive +
                            O.EstimatorSamplesBatch +
                            O.EstimatorSamplesBackground;
  Blend(EstimatorBlendedMs, Samples, O.EstimatorBlendedMs, OSamples);
  EstimatorSamplesInteractive += O.EstimatorSamplesInteractive;
  EstimatorSamplesBatch += O.EstimatorSamplesBatch;
  EstimatorSamplesBackground += O.EstimatorSamplesBackground;
}
