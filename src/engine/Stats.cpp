//===- engine/Stats.cpp ---------------------------------------------------===//

#include "engine/Stats.h"

#include <cstdio>

using namespace regel::engine;

std::string StatsSnapshot::toJson() const {
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"jobs\":{\"submitted\":%llu,\"completed\":%llu,\"solved\":%llu,"
      "\"deadline_expired\":%llu},"
      "\"tasks\":{\"run\":%llu,\"cancelled\":%llu,\"stolen\":%llu},"
      "\"solutions\":%llu,"
      "\"synth\":{\"pops\":%llu,\"expansions\":%llu,\"pruned\":%llu,"
      "\"checked\":%llu,\"smt_calls\":%llu,\"total_ms\":%.1f},"
      "\"dfa_store\":{\"hits\":%llu,\"misses\":%llu,\"size\":%llu},"
      "\"approx_store\":{\"hits\":%llu,\"misses\":%llu,\"size\":%llu}}",
      (unsigned long long)JobsSubmitted, (unsigned long long)JobsCompleted,
      (unsigned long long)JobsSolved, (unsigned long long)JobsDeadlineExpired,
      (unsigned long long)TasksRun, (unsigned long long)TasksCancelled,
      (unsigned long long)TasksStolen, (unsigned long long)SolutionsFound,
      (unsigned long long)Pops, (unsigned long long)Expansions,
      (unsigned long long)PrunedInfeasible, (unsigned long long)ConcreteChecked,
      (unsigned long long)SmtSolveCalls, SynthMsTotal,
      (unsigned long long)DfaStoreHits, (unsigned long long)DfaStoreMisses,
      (unsigned long long)DfaStoreSize, (unsigned long long)ApproxStoreHits,
      (unsigned long long)ApproxStoreMisses,
      (unsigned long long)ApproxStoreSize);
  return Buf;
}
