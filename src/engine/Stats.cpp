//===- engine/Stats.cpp ---------------------------------------------------===//

#include "engine/Stats.h"

#include <cstdio>

using namespace regel::engine;

std::string StatsSnapshot::toJson() const {
  char Buf[3072];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"jobs\":{\"submitted\":%llu,\"completed\":%llu,\"solved\":%llu,"
      "\"rejected\":%llu,\"shed_on_arrival\":%llu,\"expired_in_queue\":%llu,"
      "\"deadline_expired\":%llu,"
      "\"residency_expired\":%llu},"
      "\"tasks\":{\"run\":%llu,\"skipped\":%llu,\"stopped\":%llu,"
      "\"stolen\":%llu,\"run_interactive\":%llu,\"run_batch\":%llu,"
      "\"run_background\":%llu},"
      "\"completions_pending\":%llu,"
      "\"solutions\":%llu,"
      "\"synth\":{\"pops\":%llu,\"expansions\":%llu,\"pruned\":%llu,"
      "\"checked\":%llu,\"smt_calls\":%llu,\"dfa_gets\":%llu,"
      "\"dfa_compiles\":%llu,\"total_ms\":%.1f},"
      "\"dfa_store\":{\"hits\":%llu,\"misses\":%llu,\"size\":%llu,"
      "\"cost\":%llu,\"evictions\":%llu},"
      "\"approx_store\":{\"hits\":%llu,\"misses\":%llu,\"size\":%llu,"
      "\"evictions\":%llu},"
      "\"estimator\":{\"interactive_ms\":%.2f,\"batch_ms\":%.2f,"
      "\"background_ms\":%.2f,\"blended_ms\":%.2f,"
      "\"samples_interactive\":%llu,\"samples_batch\":%llu,"
      "\"samples_background\":%llu}}",
      (unsigned long long)JobsSubmitted, (unsigned long long)JobsCompleted,
      (unsigned long long)JobsSolved, (unsigned long long)JobsRejected,
      (unsigned long long)JobsShedOnArrival,
      (unsigned long long)JobsExpiredInQueue,
      (unsigned long long)JobsDeadlineExpired,
      (unsigned long long)JobsResidencyExpired, (unsigned long long)TasksRun,
      (unsigned long long)TasksSkipped, (unsigned long long)TasksStopped,
      (unsigned long long)TasksStolen,
      (unsigned long long)TasksRunInteractive,
      (unsigned long long)TasksRunBatch,
      (unsigned long long)TasksRunBackground,
      (unsigned long long)CompletionsPending,
      (unsigned long long)SolutionsFound,
      (unsigned long long)Pops, (unsigned long long)Expansions,
      (unsigned long long)PrunedInfeasible, (unsigned long long)ConcreteChecked,
      (unsigned long long)SmtSolveCalls, (unsigned long long)DfaGets,
      (unsigned long long)DfaCompiles, SynthMsTotal,
      (unsigned long long)DfaStoreHits, (unsigned long long)DfaStoreMisses,
      (unsigned long long)DfaStoreSize, (unsigned long long)DfaStoreCost,
      (unsigned long long)DfaStoreEvictions,
      (unsigned long long)ApproxStoreHits,
      (unsigned long long)ApproxStoreMisses,
      (unsigned long long)ApproxStoreSize,
      (unsigned long long)ApproxStoreEvictions,
      EstimatorInteractiveMs, EstimatorBatchMs, EstimatorBackgroundMs,
      EstimatorBlendedMs,
      (unsigned long long)EstimatorSamplesInteractive,
      (unsigned long long)EstimatorSamplesBatch,
      (unsigned long long)EstimatorSamplesBackground);
  return Buf;
}
