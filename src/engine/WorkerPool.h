//===- engine/WorkerPool.h - Persistent priority work-stealing pool -*- C++ -*-//
//
// Part of the Regel reproduction. A fixed set of worker threads with one
// task deque *per priority class* per worker:
//
//   * tasks submitted from a pool thread go to that worker's own deques
//     (jobs that spawn follow-up work keep it local and cache-warm);
//   * external submissions are distributed round-robin;
//   * a worker pops from the front of its own deques (FIFO within a class,
//     so per-sketch tasks of one job run roughly in rank order) and steals
//     from the back of a victim's deques when its own are empty.
//
// Priority picking is weighted, not strict: out of every 16 local pops a
// worker starts the class scan from Interactive 12 times, from Batch 3
// times, and from Background once, falling through to the other classes
// when the preferred one is empty. Strict priority would let a stream of
// interactive work starve a batch fan-out forever; the weighted schedule
// guarantees every class a bounded share of worker throughput while still
// letting interactive tasks overtake an arbitrarily deep batch backlog.
// Constructing the pool with Fifo = true collapses every class into one
// FIFO band (the pre-priority behaviour) — kept so the fairness bench can
// measure what the weighted scheduler buys.
//
// The pool is persistent: it outlives individual synthesis requests, which
// is the point — thread start-up, cache warm-up, and allocator state
// amortize across the whole serving lifetime instead of being paid per
// query as in the old per-request thread spawn.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_WORKERPOOL_H
#define REGEL_ENGINE_WORKERPOOL_H

#include "support/Mutex.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace regel::engine {

/// Scheduling class of a task (and, one level up, of a job: every task a
/// job fans out inherits the job's priority). Lower values are more
/// urgent. Interactive is the default so priority-unaware callers keep the
/// old single-class behaviour unchanged.
enum class Priority : unsigned {
  Interactive = 0, ///< latency-sensitive (a user is waiting)
  Batch = 1,       ///< bulk fan-outs; must not starve Interactive
  Background = 2,  ///< best-effort (warming, speculative work)
};

inline constexpr unsigned NumPriorities = 3;

/// Short lower-case name ("interactive" / "batch" / "background").
const char *priorityName(Priority P);

/// Parses a priority name as produced by priorityName; returns false and
/// leaves \p Out untouched on an unknown name.
bool parsePriority(const std::string &Name, Priority &Out);

/// True when the current thread is a worker of ANY WorkerPool — the
/// threads on which blocking on a job result can deadlock the engine.
bool onPoolWorkerThread();

class WorkerPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p Threads workers. Zero is a deliberate degenerate mode for
  /// deterministic tests: tasks are accepted and queued but no thread ever
  /// pops them, so queue-state seams (admission, deadline sweeps, eager
  /// expiry) can be exercised with full control; shutdown() still drains
  /// everything on the caller's thread, honouring the no-stranded-task
  /// contract. With \p Fifo set, priority classes are ignored and every
  /// task lands in one FIFO band per worker.
  explicit WorkerPool(unsigned Threads, bool Fifo = false);

  /// Drains all queued tasks, then joins the workers (via shutdown()).
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues \p T under priority class \p P. Returns false when the pool
  /// is shutting down (the task is dropped, and was never visible to a
  /// worker).
  bool submit(Task T, Priority P = Priority::Interactive);

  /// Stops accepting work, runs every task that was accepted, and joins
  /// the workers. Safe against concurrent submit(): a submission racing
  /// shutdown either gets its task executed or gets false back — an
  /// accepted task is never stranded. Idempotent; called by the
  /// destructor. Must not be called from a worker thread or from more
  /// than one thread at a time.
  void shutdown();

  unsigned threadCount() const { return NumThreads; }

  /// True when called from one of this pool's worker threads.
  bool onWorkerThread() const;

  uint64_t tasksRun() const { return TasksRun.load(std::memory_order_relaxed); }
  uint64_t tasksStolen() const {
    return TasksStolen.load(std::memory_order_relaxed);
  }

  /// Tasks run per priority class (in Fifo mode everything counts under
  /// the class it was submitted with, even though scheduling ignored it).
  uint64_t tasksRun(Priority P) const {
    return TasksRunByClass[static_cast<unsigned>(P)].load(
        std::memory_order_relaxed);
  }

private:
  /// A task tagged with its class so the run counters stay exact even
  /// when bands are collapsed in Fifo mode.
  struct Entry {
    Task Fn;
    Priority P;
  };

  struct Worker {
    Mutex M;
    /// One band per class.
    std::array<std::deque<Entry>, NumPriorities> Q REGEL_GUARDED_BY(M);
    uint64_t PopSeq REGEL_GUARDED_BY(M) = 0; ///< weighted-schedule cursor
    std::thread Thread;
  };

  void workerLoop(unsigned Id);
  bool popLocal(unsigned Id, Entry &Out);
  bool steal(unsigned Thief, Entry &Out);
  bool anyQueued();
  unsigned bandFor(Priority P) const {
    return Fifo ? 0u : static_cast<unsigned>(P);
  }

  std::vector<std::unique_ptr<Worker>> Workers; ///< ≥1 (deques exist even
                                                ///< in the 0-thread mode)
  unsigned NumThreads = 0; ///< actual worker threads spawned
  const bool Fifo;
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> NextQueue{0}; ///< round-robin cursor for external submits
  std::atomic<uint64_t> TasksRun{0};
  std::atomic<uint64_t> TasksStolen{0};
  std::array<std::atomic<uint64_t>, NumPriorities> TasksRunByClass{};

  /// Sleep/wake machinery: workers with nothing to run or steal wait here.
  /// Submissions bump WorkEpoch under IdleM; idle workers re-check the
  /// queues and the epoch under the same mutex, which makes the
  /// notify/wait pairing race-free.
  Mutex IdleM;
  std::condition_variable IdleCV;
  uint64_t WorkEpoch REGEL_GUARDED_BY(IdleM) = 0;
};

} // namespace regel::engine

#endif // REGEL_ENGINE_WORKERPOOL_H
