//===- engine/WorkerPool.h - Persistent work-stealing pool ------*- C++ -*-===//
//
// Part of the Regel reproduction. A fixed set of worker threads with one
// task deque per worker:
//
//   * tasks submitted from a pool thread go to that worker's own deque
//     (jobs that spawn follow-up work keep it local and cache-warm);
//   * external submissions are distributed round-robin;
//   * a worker pops from the front of its own deque (FIFO within a worker,
//     so per-sketch tasks of one job run roughly in rank order) and steals
//     from the back of a victim's deque when its own is empty.
//
// The pool is persistent: it outlives individual synthesis requests, which
// is the point — thread start-up, cache warm-up, and allocator state
// amortize across the whole serving lifetime instead of being paid per
// query as in the old per-request thread spawn.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_WORKERPOOL_H
#define REGEL_ENGINE_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace regel::engine {

class WorkerPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p Threads workers (at least one).
  explicit WorkerPool(unsigned Threads);

  /// Drains all queued tasks, then joins the workers (via shutdown()).
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues \p T. Returns false when the pool is shutting down (the task
  /// is dropped, and was never visible to a worker).
  bool submit(Task T);

  /// Stops accepting work, runs every task that was accepted, and joins
  /// the workers. Safe against concurrent submit(): a submission racing
  /// shutdown either gets its task executed or gets false back — an
  /// accepted task is never stranded. Idempotent; called by the
  /// destructor. Must not be called from a worker thread or from more
  /// than one thread at a time.
  void shutdown();

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// True when called from one of this pool's worker threads.
  bool onWorkerThread() const;

  uint64_t tasksRun() const { return TasksRun.load(std::memory_order_relaxed); }
  uint64_t tasksStolen() const {
    return TasksStolen.load(std::memory_order_relaxed);
  }

private:
  struct Worker {
    std::mutex M;
    std::deque<Task> Q;
    std::thread Thread;
  };

  void workerLoop(unsigned Id);
  bool popLocal(unsigned Id, Task &Out);
  bool steal(unsigned Thief, Task &Out);
  bool anyQueued();

  std::vector<std::unique_ptr<Worker>> Workers;
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> NextQueue{0}; ///< round-robin cursor for external submits
  std::atomic<uint64_t> TasksRun{0};
  std::atomic<uint64_t> TasksStolen{0};

  /// Sleep/wake machinery: workers with nothing to run or steal wait here.
  /// Submissions bump WorkEpoch under IdleM; idle workers re-check the
  /// queues and the epoch under the same mutex, which makes the
  /// notify/wait pairing race-free.
  std::mutex IdleM;
  std::condition_variable IdleCV;
  uint64_t WorkEpoch = 0; ///< guarded by IdleM
};

} // namespace regel::engine

#endif // REGEL_ENGINE_WORKERPOOL_H
