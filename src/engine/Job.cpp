//===- engine/Job.cpp -----------------------------------------------------===//

#include "engine/Job.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace regel;
using namespace regel::engine;

SynthJob::SynthJob(JobRequest R, std::shared_ptr<const Clock> C)
    : Req(std::move(R)), Clk(C ? std::move(C) : Clock::steady()),
      SinceSubmit(Clk.get()) {
  if (Req.Deterministic)
    PerSketch.resize(Req.Sketches.size());
}

bool SynthJob::markStarted() {
  int64_t Expected = -1;
  int64_t NowUs = static_cast<int64_t>(SinceSubmit.elapsedMs() * 1000.0);
  if (ExecStartUs.compare_exchange_strong(Expected, NowUs,
                                          std::memory_order_acq_rel))
    return true;
  // Lost the race: either a sibling task started first (normal) or the
  // deadline sweep expired the job in queue (the task must bail out).
  return Expected != ExpiredBeforeStartUs;
}

double SynthJob::execElapsedMs() const {
  int64_t StartUs = ExecStartUs.load(std::memory_order_relaxed);
  if (StartUs < 0)
    return 0;
  return SinceSubmit.elapsedMs() - static_cast<double>(StartUs) / 1000.0;
}

void SynthJob::onComplete(Callback CB) {
  {
    MutexLock Guard(M);
    if (!Ready) {
      Callbacks.push_back(std::move(CB));
      return;
    }
    // Already complete: fall through and run on the registering thread.
    // The race with a concurrent completion resolves under M — either the
    // callback made it into Callbacks before Ready was set (the finisher
    // runs it) or Ready was observed here (we run it) — never both.
  }
  // Result is immutable once Ready; invoking outside the lock keeps a
  // continuation free to call done()/wait()/onComplete itself. The
  // unguarded read is safe for the same reason, which the analysis
  // cannot see — copy it out under the lock instead of suppressing.
  JobResult Copy;
  {
    MutexLock Guard(M);
    Copy = Result;
  }
  CB(Copy);
}

JobResult SynthJob::wait() {
  assert(!onPoolWorkerThread() &&
         "SynthJob::wait() on an engine worker thread deadlocks the pool: "
         "the worker blocks on work only workers can run — use "
         "onComplete/waitFor or restructure the caller");
  // Thin shim over the timed wait (the async-first primitive): loop a
  // long slice so spurious wakeups and the shim share one code path.
  for (;;)
    if (std::optional<JobResult> R = waitFor(60 * 60 * 1000))
      return *R;
}

std::optional<JobResult> SynthJob::waitFor(int64_t TimeoutMs) {
  // The timeout runs on the job's clock: under a ManualClock a
  // waitFor(50) times out when 50 *virtual* ms have been advanced, which
  // is what makes timeout paths testable without real sleeps.
  UniqueLock Guard(M);
  if (!Clk->waitFor(CV, Guard.native(), TimeoutMs,
                    [this] { return readyPred(); }))
    return std::nullopt;
  return Result;
}

bool SynthJob::done() const {
  MutexLock Guard(M);
  return Ready;
}

bool JobQueue::tryAdd(const JobPtr &J, size_t MaxDepth) {
  MutexLock Guard(M);
  if (MaxDepth && Active.size() >= MaxDepth)
    return false;
  Active.push_back(J);
  return true;
}

void JobQueue::remove(const SynthJob *J) {
  {
    MutexLock Guard(M);
    Active.erase(std::remove_if(Active.begin(), Active.end(),
                                [J](const JobPtr &P) { return P.get() == J; }),
                 Active.end());
  }
  CV.notify_all();
}

size_t JobQueue::depth() const {
  MutexLock Guard(M);
  return Active.size();
}

void JobQueue::cancelAll() {
  std::vector<JobPtr> Snapshot;
  {
    MutexLock Guard(M);
    Snapshot = Active;
  }
  for (const JobPtr &J : Snapshot)
    J->cancel();
}

void JobQueue::drain() {
  UniqueLock Guard(M);
  CV.wait(Guard.native(), [this] { return drainedPred(); });
}
