//===- engine/Engine.h - Concurrent synthesis engine ------------*- C++ -*-===//
//
// Part of the Regel reproduction. The serving layer the paper's Sec. 6
// parallelism grows into: one persistent Engine per process (or per
// tenant) accepts many concurrent synthesis jobs, fans each out into one
// task per sketch on a shared work-stealing worker pool, cancels sibling
// tasks as soon as a job has its TopK answers, enforces per-job deadlines,
// and shares the regex->DFA and sketch-approximation caches across every
// run. core/Regel is a thin client of this class; servers and benches can
// drive it directly through the batch API.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_ENGINE_H
#define REGEL_ENGINE_ENGINE_H

#include "engine/Caches.h"
#include "engine/Job.h"
#include "engine/Stats.h"
#include "engine/WorkerPool.h"

#include <memory>
#include <vector>

namespace regel::engine {

struct EngineConfig {
  /// Worker threads in the pool.
  unsigned Threads = 2;

  /// Shards per cross-run cache (locks scale with this).
  unsigned CacheShards = 16;

  /// Cross-run caches to use. When null the engine creates its own;
  /// passing one lets several engines (or engine generations across
  /// restarts of a config) share warmed caches.
  std::shared_ptr<SharedCaches> Caches;

  /// Size caps for the self-created caches (ignored when Caches is passed
  /// in — the owner of a shared cache decides its limits). Zero fields
  /// mean unbounded; see CacheLimits.
  CacheLimits DfaCacheLimits;
  CacheLimits ApproxCacheLimits;

  /// Admission control high-water mark (0 = off): a submission arriving
  /// while queueDepth() is at or above this is rejected outright — the
  /// returned job completes immediately with Rejected set and nothing is
  /// enqueued. Shedding at submit keeps a loaded engine's queue (and thus
  /// every accepted job's residency) bounded instead of letting latency
  /// grow without limit.
  size_t MaxQueueDepth = 0;
};

class Engine {
public:
  explicit Engine(EngineConfig Cfg = EngineConfig());

  /// Cancels nothing: drains every queued task, then joins the workers.
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Enqueues one job; returns immediately with a waitable handle. Under
  /// backpressure (MaxQueueDepth reached) the job is rejected instead of
  /// enqueued: the handle is already complete with Result.Rejected set.
  JobPtr submit(JobRequest R);

  /// Submits every request, then blocks until all are done. Results are
  /// positionally aligned with \p Requests. Must not be called from a
  /// worker thread (it blocks).
  std::vector<JobResult> runBatch(std::vector<JobRequest> Requests);

  /// Jobs submitted but not yet completed.
  size_t queueDepth() const { return Queue.depth(); }

  /// Cancels every in-flight job.
  void cancelAll() { Queue.cancelAll(); }

  /// Point-in-time copy of all counters, including cache and pool state.
  StatsSnapshot snapshot() const;

  SharedCaches &caches() { return *Caches; }
  const EngineConfig &config() const { return Cfg; }
  unsigned threadCount() const { return Pool.threadCount(); }

private:
  void runSketchTask(const JobPtr &J, unsigned Rank);
  void finishTask(const JobPtr &J);
  void finalize(const JobPtr &J);

  EngineConfig Cfg;
  std::shared_ptr<SharedCaches> Caches;
  EngineStats Stats;
  JobQueue Queue;
  WorkerPool Pool; ///< last member: destroyed (and drained) first
};

} // namespace regel::engine

#endif // REGEL_ENGINE_ENGINE_H
