//===- engine/Engine.h - Concurrent synthesis engine ------------*- C++ -*-===//
//
// Part of the Regel reproduction. The serving layer the paper's Sec. 6
// parallelism grows into: one persistent Engine per process (or per
// tenant) accepts many concurrent synthesis jobs, fans each out into one
// task per sketch on a shared priority-aware work-stealing pool, cancels
// sibling tasks as soon as a job has its TopK answers, enforces per-job
// deadlines, and shares the regex->DFA and sketch-approximation caches
// across every run. Admission is deadline-aware: a per-class EWMA of
// service time sheds submissions whose residency SLA cannot be met
// (ShedOnArrival), and a deadline min-heap expires queued jobs eagerly
// the moment their SLA lapses instead of when a worker finally reaches
// them. All semantic time flows through the Clock seam (EngineConfig::
// TimeSource), so every budget, SLA, and timed wait is testable to the
// millisecond under a ManualClock. Completion is async-first: jobs notify
// through
// onComplete continuations and (opt-in) the engine's completion queue, so
// a single-threaded event loop — the socket server in src/server — can
// drive thousands of in-flight jobs without blocking a thread per job.
// core/Regel is a thin client of this class; servers and benches can
// drive it directly through the batch API.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_ENGINE_H
#define REGEL_ENGINE_ENGINE_H

#include "engine/Caches.h"
#include "engine/Estimator.h"
#include "engine/Job.h"
#include "engine/Stats.h"
#include "engine/WorkerPool.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Clock.h"
#include "support/Mutex.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

namespace regel::engine {

struct EngineConfig {
  /// Worker threads in the pool. Zero is a test-harness mode: jobs are
  /// accepted and queued but never execute (until the destructor drains
  /// them), giving deterministic control over queue-state behaviour —
  /// admission, shedding, eager expiry — under a ManualClock.
  unsigned Threads = 2;

  /// Shards per cross-run cache (locks scale with this).
  unsigned CacheShards = 16;

  /// Cross-run caches to use. When null the engine creates its own;
  /// passing one lets several engines (or engine generations across
  /// restarts of a config) share warmed caches.
  std::shared_ptr<SharedCaches> Caches;

  /// Size caps for the self-created caches (ignored when Caches is passed
  /// in — the owner of a shared cache decides its limits). Zero fields
  /// mean unbounded; see CacheLimits.
  CacheLimits DfaCacheLimits;
  CacheLimits ApproxCacheLimits;
  CacheLimits SmtCacheLimits;

  /// Shared DFA tier kill-switch (on by default). When off the engine
  /// never wraps its shared DFA store, even if TierClient/TieredDfa are
  /// set — synthesis runs see the plain ShardedDfaStore exactly as
  /// before. Kept as a knob so operators can rule the tier out when
  /// chasing a wrong-answer or latency report, and so the bench can
  /// measure what the tier buys.
  bool DfaTier = true;

  /// Client of a shared DFA tier (see dfad/Tier.h): in-process
  /// (dfad::LocalDfaTier) or remote (dfad::RemoteDfaTier speaking the v2
  /// `dfa` frames). When set (and DfaTier is on), the engine layers a
  /// TieredDfaStore over its shared store: local misses fetch from the
  /// tier before compiling, and fresh compilations publish write-through.
  std::shared_ptr<dfad::DfaTierClient> TierClient;

  /// Pre-built tiered store to use instead of constructing one from
  /// TierClient. Lets several engines sharing one SharedCaches also share
  /// one single-flight table (concurrent cold misses across engines then
  /// dedup to one compile). Must wrap the same ShardedDfaStore as Caches
  /// — the owner who built both guarantees that.
  std::shared_ptr<TieredDfaStore> TieredDfa;

  /// Cross-run SMT verdict memoization (on by default): synthesis runs
  /// get SynthConfig::SharedSmt pointed at the shared ShardedSmtCache, so
  /// constant-inference satisfiability checks repeat across jobs are
  /// answered from cache instead of re-searched. Off detaches the store
  /// (every run solves from scratch) — kept as a knob so the bench can
  /// measure what the cache buys and operators can rule the cache out
  /// when chasing a wrong-answer report.
  bool SmtMemo = true;

  /// Admission control high-water mark (0 = off): a submission arriving
  /// while queueDepth() is at or above this is rejected outright — the
  /// returned job completes immediately with Rejected set and nothing is
  /// enqueued. Shedding at submit keeps a loaded engine's queue (and thus
  /// every accepted job's residency) bounded instead of letting latency
  /// grow without limit.
  size_t MaxQueueDepth = 0;

  /// Ignore JobRequest::Pri and schedule every task in one FIFO band per
  /// worker — the pre-priority behaviour. Exists so the fairness bench
  /// (and regressions) can measure what weighted priority picking buys;
  /// leave off in production.
  bool FifoScheduling = false;

  /// Time source for every semantic time read in the engine — job
  /// residency SLAs, deadlines, timed waits, search budgets, latency
  /// accounting. Null means the process steady clock; tests inject a
  /// ManualClock to drive all of it deterministically.
  std::shared_ptr<const Clock> TimeSource;

  /// Deadline-aware shedding (on by default): jobs whose ResidencyBudgetMs
  /// cannot be met given the service-time estimator's current view are
  /// shed at submit (JobResult::ShedOnArrival) instead of expiring in
  /// queue, and queued jobs whose SLA lapses are expired eagerly by a
  /// deadline-heap sweep on each dispatch rather than lazily at task
  /// start. Off reverts to the lazy pre-shedding behaviour — kept so the
  /// overload bench can measure what shedding buys.
  bool DeadlineShedding = true;

  /// Observability (on by default): latency histograms recorded into the
  /// engine's obs::Registry and per-job span tracing. Off compiles the
  /// hot path down to flag tests — no histogram records, no trace
  /// allocations — which is what the bench's overhead row compares
  /// against. The registry itself always exists (metricsText() still
  /// exposes the engine counters), only the per-job recording is gated.
  bool Observability = true;

  /// Trace sampling and retention knobs (see obs::Tracer::Config):
  /// failed jobs (shed/rejected/expired/SLA-missed) are always retained,
  /// successes at Trace.SampleProb.
  obs::Tracer::Config Trace;
};

class Engine {
public:
  explicit Engine(EngineConfig Cfg = EngineConfig());

  /// Cancels nothing: drains every queued task, then joins the workers.
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Enqueues one job; returns immediately with a handle carrying the
  /// async completion API (onComplete / waitFor / wait). Under
  /// backpressure (MaxQueueDepth reached) the job is rejected instead of
  /// enqueued: the handle is already complete with Result.Rejected set
  /// (continuations registered on it run immediately, and it still
  /// reaches the completion queue when the request opted in — a rejected
  /// job is a completion the client must see).
  JobPtr submit(JobRequest R);

  /// Submits every request, then blocks until all are done. Results are
  /// positionally aligned with \p Requests. Must not be called from a
  /// worker thread (it blocks; debug builds assert).
  std::vector<JobResult> runBatch(std::vector<JobRequest> Requests);

  /// Drains the completion queue: every job that finished since the last
  /// poll and had EnqueueCompletion set, in completion order. Non-blocking;
  /// returns empty when nothing completed. The single consumer loop of an
  /// event-driven front-end pairs this with SynthJob::onComplete used as a
  /// wakeup (e.g. writing a self-pipe) so it never busy-polls.
  ///
  /// The queue is a SINGLE-CONSUMER facility: the drain is destructive,
  /// so exactly one client of an engine may poll it (two pollers steal
  /// each other's completions). Other clients sharing the engine should
  /// complete via onComplete/waitFor/wait, which are per-job and
  /// unaffected.
  std::vector<JobPtr> pollCompleted();

  /// Like pollCompleted, but blocks up to \p TimeoutMs for at least one
  /// completion. Returns empty on timeout. Must not be called from a
  /// worker thread.
  std::vector<JobPtr> waitCompleted(int64_t TimeoutMs);

  /// Completions currently waiting in the queue (monitoring).
  size_t completedPending() const;

  /// Jobs submitted but not yet completed.
  size_t queueDepth() const { return Queue.depth(); }

  /// Cancels every in-flight job.
  void cancelAll() { Queue.cancelAll(); }

  /// Point-in-time copy of all counters, including cache and pool state.
  StatsSnapshot snapshot() const;

  /// Prometheus-style text exposition of every engine metric: the
  /// snapshot counters mirrored into the registry plus the live latency
  /// histograms (per-class queue/exec/total, per-task exec, DFA compile,
  /// SMT inference, estimator error). The uniform read surface — the
  /// socket server's v2 `metrics` frame and the bench's percentile rows
  /// both come from here.
  std::string metricsText() const;

  /// Chrome trace_event JSON of retained trace \p Id ("" when unknown —
  /// sampled out, evicted, or never traced).
  std::string traceJson(uint64_t Id) const { return Tracing->traceJson(Id); }

  /// The metrics registry (never null). Exposed so tests and benches can
  /// read histogram snapshots directly and servers can add their own
  /// series next to the engine's.
  const std::shared_ptr<obs::Registry> &registry() const { return Reg; }

  /// The span tracer (never null). Shared so a test can outlive the
  /// engine and still inspect retained traces.
  const std::shared_ptr<obs::Tracer> &tracer() const { return Tracing; }

  SharedCaches &caches() { return *Caches; }

  /// The tiered DFA store synthesis runs resolve through, or null when no
  /// tier is attached (TierClient/TieredDfa unset or DfaTier off).
  /// Exposed so tests can assert single-flight and tier-hit accounting.
  const std::shared_ptr<TieredDfaStore> &tieredDfa() const {
    return TierStore;
  }

  const EngineConfig &config() const { return Cfg; }
  unsigned threadCount() const { return Pool.threadCount(); }

  /// The engine's time source (never null; defaults to Clock::steady()).
  const std::shared_ptr<const Clock> &clock() const { return Clk; }

  /// Earliest residency deadline among queued SLA jobs, as an absolute
  /// engine-clock instant in us (INT64_MAX when none). Lock-free read of
  /// the sweep's advisory atomic: an event loop bounds its poll timeout
  /// by this so eager-expiry verdicts surface when they are due instead
  /// of at the next fixed-interval tick (the timer half of the deadline
  /// sweep; dispatch/submit/poll remain the event-driven half).
  int64_t nextResidencyDeadlineUs() const {
    return NextResidencyDeadlineUs.load(std::memory_order_acquire);
  }

  /// The service-time estimator behind deadline-aware shedding. Exposed
  /// so tests can prime known estimates deterministically and monitoring
  /// can read convergence; production code only feeds it via completions.
  ServiceTimeEstimator &estimator() { return Estimator; }

private:
  void runSketchTask(const JobPtr &J, unsigned Rank);
  void finishTask(const JobPtr &J);
  void finalize(const JobPtr &J);

  /// True when, per the estimator's current view, a job of class \p P
  /// submitted now cannot meet \p ResidencyBudgetMs (estimated queue wait
  /// plus estimated exec exceed it). Cold classes never shed.
  bool cannotMeetBudget(Priority P, int64_t ResidencyBudgetMs) const;

  /// Pops every residency-heap entry whose deadline has passed and
  /// expires the jobs that never started (ResidencyExpired published
  /// immediately; their queued tasks become no-ops). Called on each
  /// dispatch, each submit, and each completion-queue drain — so expiry
  /// is eager even when no worker frees up.
  void sweepExpiredQueued();

  /// Expires one still-queued job in place (the sweep's slow path).
  void expireQueued(const JobPtr &J);

  /// Publishes a finished job: marks it Ready, hands it to the completion
  /// queue (when opted in), wakes waiters, and runs continuations — in
  /// that order, so a continuation used as an event-loop wakeup finds the
  /// job already pollable. Pre: J->Result is final; called exactly once.
  void publishCompletion(const JobPtr &J);

  /// Records the job-level latency histograms and spans at completion
  /// (no-op when observability is off or nothing is traced).
  void observeCompletion(const JobPtr &J, const char *Verdict,
                         bool ForceKeepTrace);

  /// Copies the current StatsSnapshot into registry counters/gauges
  /// (called by metricsText so the exposition is point-in-time fresh).
  void mirrorSnapshot() const;

  EngineConfig Cfg;
  std::shared_ptr<const Clock> Clk; ///< never null
  std::shared_ptr<SharedCaches> Caches;

  /// Tiered wrapper over Caches->Dfa when a tier is attached (null
  /// otherwise — runs then point straight at the plain shared store).
  std::shared_ptr<TieredDfaStore> TierStore;
  std::shared_ptr<obs::Registry> Reg;    ///< never null
  std::shared_ptr<obs::Tracer> Tracing;  ///< never null

  /// Hot-path histogram handles, resolved once at construction (null when
  /// Cfg.Observability is off). Per scheduling class for the job-level
  /// latencies; unlabeled for the task/DFA/SMT timings.
  struct JobHists {
    obs::Histogram *QueueUs = nullptr;
    obs::Histogram *ExecUs = nullptr;
    obs::Histogram *TotalUs = nullptr;
    obs::Histogram *EstErrUs = nullptr;
  };
  JobHists PerPri[NumPriorities];
  obs::Histogram *TaskExecUs = nullptr;
  obs::Histogram *DfaCompileUs = nullptr;
  obs::Histogram *DfaTierFetchUs = nullptr;
  obs::Histogram *SmtInferUs = nullptr;

  EngineStats Stats;
  ServiceTimeEstimator Estimator;
  JobQueue Queue;

  /// Min-heap of residency deadlines for accepted jobs with an SLA, swept
  /// by sweepExpiredQueued. weak_ptr so a completed job's result is not
  /// retained until its (now irrelevant) deadline passes.
  struct ResidencyEntry {
    int64_t DeadlineUs;
    std::weak_ptr<SynthJob> J;
  };
  struct LaterDeadline {
    bool operator()(const ResidencyEntry &A, const ResidencyEntry &B) const {
      return A.DeadlineUs > B.DeadlineUs;
    }
  };
  mutable Mutex HeapM;
  std::priority_queue<ResidencyEntry, std::vector<ResidencyEntry>,
                      LaterDeadline>
      ResidencyHeap REGEL_GUARDED_BY(HeapM);

  /// Earliest deadline in ResidencyHeap (INT64_MAX = empty), written
  /// under HeapM, read lock-free: the sweep's fast path skips the mutex
  /// on every dispatch while no deadline can have lapsed, and
  /// waitCompleted times its waits to this instead of polling.
  std::atomic<int64_t> NextResidencyDeadlineUs{INT64_MAX};

  /// Completion queue (multi-producer: finishing workers; consumers:
  /// pollCompleted / waitCompleted).
  mutable Mutex CompletedM;
  std::condition_variable CompletedCV;
  std::deque<JobPtr> Completed REGEL_GUARDED_BY(CompletedM);

  // CV-wait predicate: runs inside waitCompleted with CompletedM held,
  // but Clang analyzes the lambda body as an unlocked function.
  bool completionPendingPred() const REGEL_NO_THREAD_SAFETY_ANALYSIS {
    return !Completed.empty();
  }

  WorkerPool Pool; ///< last member: destroyed (and drained) first
};

} // namespace regel::engine

#endif // REGEL_ENGINE_ENGINE_H
