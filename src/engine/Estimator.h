//===- engine/Estimator.h - Per-class service-time estimator ----*- C++ -*-===//
//
// Part of the Regel reproduction. An exponentially weighted moving average
// of job execution time, kept per priority class, feeding the engine's
// deadline-aware load shedding: at submit, `estimated queue wait +
// estimated exec > ResidencyBudgetMs` means the job cannot meet its SLA
// and is shed on arrival instead of burning queue residency before
// expiring anyway.
//
// Three properties the shedding contract depends on:
//
//   * Cold start is conservative: a class with no samples yet has no
//     estimate (estimateMs returns a negative sentinel) and the engine
//     never sheds on a guess — admission stays open until real service
//     times exist.
//   * Classes are isolated: Batch fan-outs running for seconds must not
//     inflate the estimate used to judge an Interactive submission. Only
//     the blended (all-samples) figure — used for queue wait, where the
//     queue genuinely mixes classes — crosses class lines.
//   * Samples are execution time, not residency: queue wait is modelled
//     separately from current queue depth, so a congested period does not
//     feed back into the exec estimate and lock the engine into shedding
//     after the congestion clears.
//
// All methods are thread-safe (finishing workers record, submitters read).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_ESTIMATOR_H
#define REGEL_ENGINE_ESTIMATOR_H

#include "engine/WorkerPool.h"
#include "support/Mutex.h"

#include <cstdint>

namespace regel::engine {

class ServiceTimeEstimator {
public:
  /// \p Alpha is the EWMA weight of the newest sample; 0.2 converges to a
  /// step change in service time within ~10 samples while smoothing over
  /// one-off outliers.
  explicit ServiceTimeEstimator(double Alpha = 0.2) : Alpha(Alpha) {}

  /// Records one job's execution time (ms) under class \p P.
  void recordSample(Priority P, double ExecMs);

  /// EWMA execution-time estimate for class \p P in milliseconds, or a
  /// negative value when the class has no samples yet (cold: callers must
  /// not shed on it).
  double estimateMs(Priority P) const;

  /// EWMA over every sample regardless of class (negative when no samples
  /// at all). Used for queue-wait estimation, where the backlog mixes
  /// classes.
  double blendedEstimateMs() const;

  /// Samples recorded so far for class \p P.
  uint64_t samples(Priority P) const;

  struct Snapshot {
    double EstMs[NumPriorities];    ///< negative = cold
    uint64_t Samples[NumPriorities];
    double BlendedMs;               ///< negative = cold
  };
  Snapshot snapshot() const;

private:
  struct Cell {
    double Ewma = 0;
    uint64_t N = 0;
  };

  const double Alpha;
  mutable Mutex M;
  Cell ByClass[NumPriorities] REGEL_GUARDED_BY(M);
  Cell Blended REGEL_GUARDED_BY(M);
};

} // namespace regel::engine

#endif // REGEL_ENGINE_ESTIMATOR_H
