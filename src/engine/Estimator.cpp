//===- engine/Estimator.cpp -----------------------------------------------===//

#include "engine/Estimator.h"

#include <algorithm>

using namespace regel::engine;

namespace {

void feed(double Alpha, double Sample, double &Ewma, uint64_t &N) {
  Sample = std::max(Sample, 0.0);
  // First sample seeds the average outright: warming up from an arbitrary
  // zero would under-estimate (and under-shed) for the first ~1/Alpha
  // jobs, exactly the window where an overloaded cold engine needs the
  // estimate most.
  Ewma = N == 0 ? Sample : Alpha * Sample + (1.0 - Alpha) * Ewma;
  ++N;
}

} // namespace

void ServiceTimeEstimator::recordSample(Priority P, double ExecMs) {
  MutexLock Guard(M);
  Cell &C = ByClass[static_cast<unsigned>(P)];
  feed(Alpha, ExecMs, C.Ewma, C.N);
  feed(Alpha, ExecMs, Blended.Ewma, Blended.N);
}

double ServiceTimeEstimator::estimateMs(Priority P) const {
  MutexLock Guard(M);
  const Cell &C = ByClass[static_cast<unsigned>(P)];
  return C.N == 0 ? -1.0 : C.Ewma;
}

double ServiceTimeEstimator::blendedEstimateMs() const {
  MutexLock Guard(M);
  return Blended.N == 0 ? -1.0 : Blended.Ewma;
}

uint64_t ServiceTimeEstimator::samples(Priority P) const {
  MutexLock Guard(M);
  return ByClass[static_cast<unsigned>(P)].N;
}

ServiceTimeEstimator::Snapshot ServiceTimeEstimator::snapshot() const {
  MutexLock Guard(M);
  Snapshot S;
  for (unsigned I = 0; I < NumPriorities; ++I) {
    S.EstMs[I] = ByClass[I].N == 0 ? -1.0 : ByClass[I].Ewma;
    S.Samples[I] = ByClass[I].N;
  }
  S.BlendedMs = Blended.N == 0 ? -1.0 : Blended.Ewma;
  return S;
}
