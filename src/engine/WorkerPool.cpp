//===- engine/WorkerPool.cpp ----------------------------------------------===//

#include "engine/WorkerPool.h"

#include <algorithm>
#include <chrono>

using namespace regel::engine;

namespace {

/// Which worker (index into its pool) the current thread is, if any.
/// Thread-local so submissions from within a task land on the submitting
/// worker's own deque.
thread_local const WorkerPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorker = 0;

} // namespace

WorkerPool::WorkerPool(unsigned Threads) {
  Threads = std::max(1u, Threads);
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.push_back(std::make_unique<Worker>());
  for (unsigned I = 0; I < Threads; ++I)
    Workers[I]->Thread = std::thread([this, I] { workerLoop(I); });
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::shutdown() {
  Stop.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> Guard(IdleM);
    ++WorkEpoch;
  }
  IdleCV.notify_all();
  for (std::unique_ptr<Worker> &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
  // Post-join drain. A submit that read Stop == false can still have been
  // enqueueing while the workers did their final scans, so anything left
  // in the deques runs here, on this thread — an accepted task is never
  // stranded (SynthJob::wait would otherwise hang forever). The loop's
  // final all-empty sweep also locks every deque mutex after the Stop
  // store above, which is what makes submit's under-lock Stop check
  // decisive: a submit that locks a deque after this sweep must observe
  // Stop == true and refuse; one that locked it before was drained.
  for (;;) {
    Task T;
    bool Found = false;
    for (std::unique_ptr<Worker> &W : Workers) {
      std::lock_guard<std::mutex> Guard(W->M);
      if (W->Q.empty())
        continue;
      T = std::move(W->Q.front());
      W->Q.pop_front();
      Found = true;
      break;
    }
    if (!Found)
      break;
    T();
    TasksRun.fetch_add(1, std::memory_order_relaxed);
  }
}

bool WorkerPool::onWorkerThread() const { return CurrentPool == this; }

bool WorkerPool::submit(Task T) {
  if (Stop.load(std::memory_order_acquire))
    return false; // fast path; the decisive check is under the deque lock
  unsigned Target;
  if (CurrentPool == this) {
    Target = CurrentWorker;
  } else {
    Target = NextQueue.fetch_add(1, std::memory_order_relaxed) %
             Workers.size();
  }
  {
    std::lock_guard<std::mutex> Guard(Workers[Target]->M);
    // Re-check under the deque mutex: shutdown() sets Stop and then locks
    // every deque during its post-join drain, so either this push is
    // ordered before the drain's lock (and the task runs) or this load is
    // ordered after it (and sees Stop). Checking before the lock only, as
    // the original code did, left a window where a task enqueued after
    // the workers' final scan was stranded forever.
    if (Stop.load(std::memory_order_acquire))
      return false;
    Workers[Target]->Q.push_back(std::move(T));
  }
  // Notify under IdleM: a worker that found nothing re-checks the queues
  // while holding IdleM before sleeping, so pairing the notify with the
  // same mutex closes the scan-then-sleep window (no lost wakeups).
  {
    std::lock_guard<std::mutex> Guard(IdleM);
    ++WorkEpoch;
  }
  IdleCV.notify_one();
  return true;
}

bool WorkerPool::anyQueued() {
  for (std::unique_ptr<Worker> &W : Workers) {
    std::lock_guard<std::mutex> Guard(W->M);
    if (!W->Q.empty())
      return true;
  }
  return false;
}

bool WorkerPool::popLocal(unsigned Id, Task &Out) {
  Worker &W = *Workers[Id];
  std::lock_guard<std::mutex> Guard(W.M);
  if (W.Q.empty())
    return false;
  Out = std::move(W.Q.front());
  W.Q.pop_front();
  return true;
}

bool WorkerPool::steal(unsigned Thief, Task &Out) {
  // Scan the other deques starting just past the thief so victims differ
  // between workers.
  for (size_t Offset = 1; Offset < Workers.size(); ++Offset) {
    unsigned Victim =
        static_cast<unsigned>((Thief + Offset) % Workers.size());
    Worker &W = *Workers[Victim];
    std::lock_guard<std::mutex> Guard(W.M);
    if (W.Q.empty())
      continue;
    Out = std::move(W.Q.back());
    W.Q.pop_back();
    TasksStolen.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkerPool::workerLoop(unsigned Id) {
  CurrentPool = this;
  CurrentWorker = Id;
  for (;;) {
    Task T;
    if (popLocal(Id, T) || steal(Id, T)) {
      T();
      TasksRun.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Nothing runnable anywhere we looked. On shutdown, one more full scan
    // happens above before we get here, so queued work is drained before
    // the worker exits.
    if (Stop.load(std::memory_order_relaxed))
      return;
    std::unique_lock<std::mutex> Guard(IdleM);
    uint64_t Epoch = WorkEpoch;
    // Re-check under IdleM: submit bumps WorkEpoch under the same mutex
    // after enqueueing, so either we see the new work here or the epoch
    // predicate below sees the bump — a missed notify cannot strand a
    // task. The timeout is only a belt-and-braces backstop.
    if (anyQueued() || Stop.load(std::memory_order_relaxed))
      continue;
    IdleCV.wait_for(Guard, std::chrono::milliseconds(50), [&] {
      return WorkEpoch != Epoch || Stop.load(std::memory_order_relaxed);
    });
  }
}
