//===- engine/WorkerPool.cpp ----------------------------------------------===//

#include "engine/WorkerPool.h"

#include <algorithm>
#include <chrono>

using namespace regel::engine;

namespace {

/// Which worker (index into its pool) the current thread is, if any.
/// Thread-local so submissions from within a task land on the submitting
/// worker's own deque.
thread_local const WorkerPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorker = 0;

/// Set for the lifetime of any pool's worker loop; backs the cross-pool
/// deadlock assertion in SynthJob::wait / Engine::runBatch.
thread_local bool OnAnyPoolWorker = false;

/// The weighted pick schedule: which class a pop's band scan starts from.
/// Out of every 16 pops, 12 start at Interactive, 3 at Batch, 1 at
/// Background; the scan falls through to the remaining classes in priority
/// order when the preferred band is empty. The positions interleave the
/// Batch slots so a lone Batch task never waits more than ~5 pops.
Priority scanStart(uint64_t Seq) {
  switch (Seq % 16) {
  case 4:
  case 9:
  case 14:
    return Priority::Batch;
  case 15:
    return Priority::Background;
  default:
    return Priority::Interactive;
  }
}

} // namespace

const char *regel::engine::priorityName(Priority P) {
  switch (P) {
  case Priority::Interactive:
    return "interactive";
  case Priority::Batch:
    return "batch";
  case Priority::Background:
    return "background";
  }
  return "interactive";
}

bool regel::engine::parsePriority(const std::string &Name, Priority &Out) {
  if (Name == "interactive") {
    Out = Priority::Interactive;
    return true;
  }
  if (Name == "batch") {
    Out = Priority::Batch;
    return true;
  }
  if (Name == "background") {
    Out = Priority::Background;
    return true;
  }
  return false;
}

bool regel::engine::onPoolWorkerThread() { return OnAnyPoolWorker; }

WorkerPool::WorkerPool(unsigned Threads, bool Fifo)
    : NumThreads(Threads), Fifo(Fifo) {
  // At least one deque set exists even with zero threads (the test-only
  // queue-and-never-run mode), so submit() always has a target.
  const unsigned Queues = std::max(1u, Threads);
  Workers.reserve(Queues);
  for (unsigned I = 0; I < Queues; ++I)
    Workers.push_back(std::make_unique<Worker>());
  for (unsigned I = 0; I < Threads; ++I)
    Workers[I]->Thread = std::thread([this, I] { workerLoop(I); });
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::shutdown() {
  Stop.store(true, std::memory_order_seq_cst);
  {
    MutexLock Guard(IdleM);
    ++WorkEpoch;
  }
  IdleCV.notify_all();
  for (std::unique_ptr<Worker> &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
  // Post-join drain. A submit that read Stop == false can still have been
  // enqueueing while the workers did their final scans, so anything left
  // in the deques runs here, on this thread — an accepted task is never
  // stranded (SynthJob::wait would otherwise hang forever). The loop's
  // final all-empty sweep also locks every deque mutex after the Stop
  // store above, which is what makes submit's under-lock Stop check
  // decisive: a submit that locks a deque after this sweep must observe
  // Stop == true and refuse; one that locked it before was drained.
  for (;;) {
    Entry E;
    bool Found = false;
    for (std::unique_ptr<Worker> &W : Workers) {
      MutexLock Guard(W->M);
      for (std::deque<Entry> &Band : W->Q) {
        if (Band.empty())
          continue;
        E = std::move(Band.front());
        Band.pop_front();
        Found = true;
        break;
      }
      if (Found)
        break;
    }
    if (!Found)
      break;
    // Count before running: the closure's last act publishes job
    // completion, and a client that wakes from wait() must already see
    // counters covering every task of its job.
    TasksRun.fetch_add(1, std::memory_order_relaxed);
    TasksRunByClass[static_cast<unsigned>(E.P)].fetch_add(
        1, std::memory_order_relaxed);
    E.Fn();
  }
}

bool WorkerPool::onWorkerThread() const { return CurrentPool == this; }

bool WorkerPool::submit(Task T, Priority P) {
  if (Stop.load(std::memory_order_acquire))
    return false; // fast path; the decisive check is under the deque lock
  unsigned Target;
  if (CurrentPool == this) {
    Target = CurrentWorker;
  } else {
    Target = NextQueue.fetch_add(1, std::memory_order_relaxed) %
             Workers.size();
  }
  {
    MutexLock Guard(Workers[Target]->M);
    // Re-check under the deque mutex: shutdown() sets Stop and then locks
    // every deque during its post-join drain, so either this push is
    // ordered before the drain's lock (and the task runs) or this load is
    // ordered after it (and sees Stop). Checking before the lock only, as
    // the original code did, left a window where a task enqueued after
    // the workers' final scan was stranded forever.
    if (Stop.load(std::memory_order_acquire))
      return false;
    Workers[Target]->Q[bandFor(P)].push_back({std::move(T), P});
  }
  // Notify under IdleM: a worker that found nothing re-checks the queues
  // while holding IdleM before sleeping, so pairing the notify with the
  // same mutex closes the scan-then-sleep window (no lost wakeups).
  {
    MutexLock Guard(IdleM);
    ++WorkEpoch;
  }
  IdleCV.notify_one();
  return true;
}

bool WorkerPool::anyQueued() {
  for (std::unique_ptr<Worker> &W : Workers) {
    MutexLock Guard(W->M);
    for (const std::deque<Entry> &Band : W->Q)
      if (!Band.empty())
        return true;
  }
  return false;
}

bool WorkerPool::popLocal(unsigned Id, Entry &Out) {
  Worker &W = *Workers[Id];
  MutexLock Guard(W.M);
  // Start the band scan at the class the weighted schedule picks for this
  // pop, then fall through in priority order over the remaining bands —
  // so a pop "reserved" for Batch still runs Interactive work when no
  // batch task is queued, and vice versa. Advance the cursor only when a
  // task was actually taken: empty pops must not burn the reserved slots.
  const unsigned First =
      Fifo ? 0u : static_cast<unsigned>(scanStart(W.PopSeq));
  unsigned Order[NumPriorities];
  unsigned N = 0;
  Order[N++] = First;
  for (unsigned B = 0; B < NumPriorities; ++B)
    if (B != First)
      Order[N++] = B;
  for (unsigned I = 0; I < N; ++I) {
    std::deque<Entry> &Q = W.Q[Order[I]];
    if (Q.empty())
      continue;
    Out = std::move(Q.front());
    Q.pop_front();
    ++W.PopSeq;
    return true;
  }
  return false;
}

bool WorkerPool::steal(unsigned Thief, Entry &Out) {
  // Scan the other deques starting just past the thief so victims differ
  // between workers. Steals always take the most urgent band available
  // (from the back, away from the victim's own FIFO front): a thief is by
  // definition idle, so there is no starvation to balance against — it
  // should relieve the latency-critical backlog first.
  for (size_t Offset = 1; Offset < Workers.size(); ++Offset) {
    unsigned Victim =
        static_cast<unsigned>((Thief + Offset) % Workers.size());
    Worker &W = *Workers[Victim];
    MutexLock Guard(W.M);
    for (std::deque<Entry> &Band : W.Q) {
      if (Band.empty())
        continue;
      Out = std::move(Band.back());
      Band.pop_back();
      TasksStolen.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkerPool::workerLoop(unsigned Id) {
  CurrentPool = this;
  CurrentWorker = Id;
  OnAnyPoolWorker = true;
  for (;;) {
    Entry E;
    if (popLocal(Id, E) || steal(Id, E)) {
      // Count before running (see the shutdown drain): job completion is
      // published from inside the closure, so incrementing afterwards
      // would let a woken waiter snapshot stale per-class counts.
      TasksRun.fetch_add(1, std::memory_order_relaxed);
      TasksRunByClass[static_cast<unsigned>(E.P)].fetch_add(
          1, std::memory_order_relaxed);
      E.Fn();
      continue;
    }
    // Nothing runnable anywhere we looked. On shutdown, one more full scan
    // happens above before we get here, so queued work is drained before
    // the worker exits.
    if (Stop.load(std::memory_order_relaxed))
      return;
    UniqueLock Guard(IdleM);
    // Re-check under IdleM: submit bumps WorkEpoch under the same mutex
    // after enqueueing, so either we see the new work here or the wait
    // below is entered before the bump and the notify wakes it — a missed
    // notify cannot strand a task. The timeout is only a belt-and-braces
    // backstop, and it is deliberately REAL time, not the engine's Clock
    // seam: dispatch plumbing must keep moving under a ManualClock that
    // never advances, or virtual-time tests could never get work executed
    // at all. An unpredicated wait suffices: any wakeup — epoch bump,
    // timeout, or spurious — just re-runs the outer scan, which is the
    // ground truth the old epoch predicate approximated.
    // The shard scan under IdleM is the lost-wakeup guard itself: it must
    // run inside the submit-side epoch-bump window or a task enqueued
    // between scan and wait would strand until the backstop timeout. The
    // deques are bounded per-worker, so the sweep is O(workers) peeks.
    if (anyQueued() || // analyze:allow shard-scan lost-wakeup guard must scan inside the IdleM window
        Stop.load(std::memory_order_relaxed))
      continue;
    IdleCV.wait_for(Guard.native(), std::chrono::milliseconds(50));
  }
}
