//===- engine/Caches.h - Sharded cross-run caches ---------------*- C++ -*-===//
//
// Part of the Regel reproduction. Thread-safe sharded implementations of
// the two cache seams the synthesis layers expose:
//
//   * regex -> DFA (automata/Compile's DfaStore): every synthesis run keeps
//     its lock-free local DfaCache and falls through to the shared store on
//     a miss, so DFA determinization/minimization is paid once per process
//     per distinct regex instead of once per run.
//
//   * (sketch, depth, widened) -> over/under approximation
//     (synth/Approximate's SketchApproxStore): approximations are
//     example-independent, so concurrent jobs over a corpus that reuses
//     sketches share them outright.
//
// Sharding bounds lock contention: keys hash to one of N independently
// locked maps, so workers rarely collide on a mutex.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_CACHES_H
#define REGEL_ENGINE_CACHES_H

#include "automata/Compile.h"
#include "synth/Approximate.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace regel::engine {

/// A sharded, thread-safe regex -> DFA store.
class ShardedDfaStore : public DfaStore {
public:
  explicit ShardedDfaStore(unsigned NumShards = 16);

  std::shared_ptr<const Dfa> lookup(const RegexPtr &R) override;
  void publish(const RegexPtr &R, std::shared_ptr<const Dfa> D) override;

  size_t size() const;
  void clear();

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<RegexPtr, std::shared_ptr<const Dfa>, RegexPtrHash,
                       RegexPtrEq>
        Map;
  };

  Shard &shardFor(const RegexPtr &R);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

/// A sharded, thread-safe (sketch, depth, widened) -> approximation memo.
class ShardedApproxStore : public SketchApproxStore {
public:
  explicit ShardedApproxStore(unsigned NumShards = 16);

  bool lookup(const SketchPtr &S, unsigned Depth, bool WithClasses,
              Approx &Out) override;
  void publish(const SketchPtr &S, unsigned Depth, bool WithClasses,
               const Approx &A) override;

  size_t size() const;
  void clear();

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  struct Key {
    SketchPtr S;
    unsigned Depth;
    bool WithClasses;
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return K.S->hash() ^ (static_cast<size_t>(K.Depth) << 1) ^
             (K.WithClasses ? 0x9e3779b97f4a7c15ull : 0);
    }
  };
  struct KeyEq {
    bool operator()(const Key &A, const Key &B) const {
      return A.Depth == B.Depth && A.WithClasses == B.WithClasses &&
             sketchEquals(A.S, B.S);
    }
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<Key, Approx, KeyHash, KeyEq> Map;
  };

  Shard &shardFor(const SketchPtr &S, unsigned Depth, bool WithClasses);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

/// The caches one engine (or several engines, when passed explicitly)
/// share across all jobs.
struct SharedCaches {
  explicit SharedCaches(unsigned NumShards = 16)
      : Dfa(NumShards), Approx(NumShards) {}

  ShardedDfaStore Dfa;
  ShardedApproxStore Approx;
};

} // namespace regel::engine

#endif // REGEL_ENGINE_CACHES_H
