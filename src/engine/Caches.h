//===- engine/Caches.h - Sharded, bounded cross-run caches ------*- C++ -*-===//
//
// Part of the Regel reproduction. Thread-safe sharded implementations of
// the two cache seams the synthesis layers expose:
//
//   * regex -> DFA (automata/Compile's DfaStore): every synthesis run keeps
//     its lock-free local DfaCache and falls through to the shared store on
//     a miss, so DFA determinization/minimization is paid once per process
//     per distinct regex instead of once per run.
//
//   * (sketch, depth, widened) -> over/under approximation
//     (synth/Approximate's SketchApproxStore): approximations are
//     example-independent, so concurrent jobs over a corpus that reuses
//     sketches share them outright.
//
//   * (canonical formula, domains) -> Sat/Unsat verdict (smt/Solver's
//     VerdictStore): constant-inference queries repeat heavily across
//     jobs that share sketches and example lengths, and hash-consing
//     makes the key O(1) to hash and compare. Each shard additionally
//     keeps a small ring of known-Unsat keys so a query whose conjunct
//     set merely CONTAINS a known-Unsat core is answered without any
//     search (adding conjuncts only removes models). The ring scan's
//     subset tests run on a snapshot taken under the shard lock and
//     released before testing — no smt:: call ever executes under a
//     cache mutex.
//
// Sharding bounds lock contention: keys hash to one of N independently
// locked maps, so workers rarely collide on a mutex.
//
// Both stores are bounded (CacheLimits): each shard keeps its entries on a
// recency list and evicts from the cold end when a cap is exceeded, so a
// serving process can stay up indefinitely without the memo growth that
// otherwise accumulates one entry per distinct regex/sketch ever seen. The
// DFA store's cap is additionally cost-aware — a DFA's weight is its
// states + transitions, not its entry count — because compiled automata
// vary in size by orders of magnitude.
//
// Eviction is second-chance (scan-resistant) LRU: an entry that has been
// hit since it last reached the cold end is cycled back with its
// reference bit cleared instead of evicted. Synthesis workloads are
// mostly one-touch scans (each job publishes hundreds of job-specific
// DFAs it will only ever look up itself), with a small cross-job core
// that is re-referenced constantly; under pure LRU the scan flushes that
// core, under second-chance it stays resident.
//
// Eviction is transparent to correctness: a re-looked-up evicted entry
// just recompiles (compilation is deterministic), it only costs the
// recompilation time.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_ENGINE_CACHES_H
#define REGEL_ENGINE_CACHES_H

#include "automata/Compile.h"
#include "smt/Solver.h"
#include "support/Clock.h"
#include "support/Mutex.h"
#include "synth/Approximate.h"

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

namespace regel::dfad {
class DfaTierClient;
}

namespace regel::engine {

/// Size limits for one sharded store; zero means unlimited. Caps are
/// enforced per shard (global cap / shard count, floored, at least 1), so
/// the global figure is a firm upper bound whenever it is at least the
/// shard count, and approximate below that.
struct CacheLimits {
  /// Maximum entries across all shards.
  size_t MaxEntries = 0;

  /// Maximum summed entry cost across all shards. The DFA store measures
  /// cost in automaton size (states + transitions, see
  /// ShardedDfaStore::dfaCost); the approximation store counts 1 per entry,
  /// so for it this is a second entry cap.
  uint64_t MaxCost = 0;
};

/// splitmix64 finalizer: a cheap full-avalanche mix so shard selection
/// depends on every bit of a key hash, not just the low ones.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// A sharded, thread-safe, LRU-bounded regex -> DFA store.
class ShardedDfaStore : public DfaStore {
public:
  explicit ShardedDfaStore(unsigned NumShards = 16, CacheLimits Limits = {});

  using DfaStore::lookup; // keep the probe-carrying overload visible
  std::shared_ptr<const Dfa> lookup(const RegexPtr &R) override;
  void publish(const RegexPtr &R, std::shared_ptr<const Dfa> D) override;

  size_t size() const;
  void clear();

  /// Summed cost units (states + transitions) of every cached DFA.
  uint64_t costUnits() const;

  /// Cost of one DFA in store cost units: its states plus the transitions
  /// of its complete table.
  static uint64_t dfaCost(const Dfa &D) {
    return static_cast<uint64_t>(D.numStates()) * (1 + AlphabetSize);
  }

  const CacheLimits &limits() const { return Limits; }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

private:
  struct Entry {
    RegexPtr R;
    std::shared_ptr<const Dfa> D;
    uint64_t Cost;
    bool Hot = false; ///< hit since it last reached the cold end
  };
  struct Shard {
    mutable Mutex M;
    std::list<Entry> Lru REGEL_GUARDED_BY(M); ///< front = most recently used
    std::unordered_map<RegexPtr, std::list<Entry>::iterator, RegexPtrHash,
                       RegexPtrEq>
        Map REGEL_GUARDED_BY(M);
    uint64_t Cost REGEL_GUARDED_BY(M) = 0; ///< summed entry cost
  };

  Shard &shardFor(const RegexPtr &R);
  void evictOverLocked(Shard &S) REGEL_REQUIRES(S.M);

  std::vector<std::unique_ptr<Shard>> Shards;
  CacheLimits Limits;
  size_t MaxEntriesPerShard = 0;
  uint64_t MaxCostPerShard = 0;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
};

/// Layers a shard-local ShardedDfaStore under an optional fleet-shared
/// DFA tier (src/dfad/), and adds single-flight compile deduplication:
///
///   * lookup: local store first; on a local miss, exactly ONE caller
///     per distinct regex (the flight leader) proceeds — to the tier
///     when one is attached, else straight to returning nullptr so its
///     DfaCache compiles. Concurrent missers wait (bounded by
///     Config::FlightWaitMs) on the in-flight entry instead of each
///     paying the same determinization — the ShardedDfaStore
///     thundering-herd fix, useful even with no tier at all.
///   * publish: write-through — the local store keeps the DFA, and when
///     a tier is attached the serialized blob (when it fits
///     MaxDfaBlobBytes) is offered best-effort, then the flight is
///     fulfilled and every waiter served.
///
/// A flight-wait timeout or a tier failure degrades to a duplicate
/// compile, never an error: compilation is deterministic and publish is
/// idempotent, so correctness never depends on the tier or the flights.
///
/// Lock discipline: FlightM is leaf-level — the tier RPC, the regex
/// print, serialization and compilation all run with NO lock held (the
/// tools/analyze gate checks this); FlightM is only taken to join,
/// open, or fulfil a flight entry.
class TieredDfaStore : public DfaStore {
public:
  struct Config {
    /// The shared tier; null = single-flight only (no remote layer).
    std::shared_ptr<dfad::DfaTierClient> Tier;

    /// Clock for bounded flight waits (and fetch timing when the probe
    /// carries no clock). Defaults to Clock::steady().
    std::shared_ptr<const Clock> Clk;

    /// Longest a lookup waits on another caller's in-flight compile
    /// before giving up and compiling itself.
    int64_t FlightWaitMs = 1000;
  };

  /// Single-flight-only store (no tier, steady clock): the no-config
  /// overload exists because a `Config C = {}` default argument trips
  /// GCC's NSDMI-in-incomplete-class handling.
  explicit TieredDfaStore(ShardedDfaStore &Local);
  TieredDfaStore(ShardedDfaStore &Local, Config C);

  std::shared_ptr<const Dfa> lookup(const RegexPtr &R) override;
  std::shared_ptr<const Dfa> lookup(const RegexPtr &R,
                                    const obs::SynthProbe *P) override;
  void publish(const RegexPtr &R, std::shared_ptr<const Dfa> D) override;

  ShardedDfaStore &local() { return Local; }
  const std::shared_ptr<dfad::DfaTierClient> &tier() const {
    return Cfg.Tier;
  }

  uint64_t tierHits() const {
    return TierHits.load(std::memory_order_relaxed);
  }
  uint64_t tierMisses() const {
    return TierMisses.load(std::memory_order_relaxed);
  }
  uint64_t tierPuts() const {
    return TierPuts.load(std::memory_order_relaxed);
  }
  /// Write-throughs skipped because the blob exceeded MaxDfaBlobBytes.
  uint64_t tierPutsSkipped() const {
    return TierPutSkipped.load(std::memory_order_relaxed);
  }
  /// Lookups served by waiting on another caller's in-flight compile.
  uint64_t flightServed() const {
    return FlightServed.load(std::memory_order_relaxed);
  }
  /// Flight waits that timed out (the waiter compiled redundantly).
  uint64_t flightTimeouts() const {
    return FlightTimeouts.load(std::memory_order_relaxed);
  }

private:
  /// One in-flight resolution of a single regex. D/Done are guarded by
  /// the owning store's FlightM (annotation needs the member in scope).
  struct Flight {
    std::condition_variable CV;
    std::shared_ptr<const Dfa> D;
    bool Done = false;
  };
  using FlightPtr = std::shared_ptr<Flight>;

  // CV-wait predicate: Clang analyzes the lambda body as an unlocked
  // function.
  bool flightDoneLocked(const FlightPtr &F) const
      REGEL_NO_THREAD_SAFETY_ANALYSIS { // callers hold FlightM
    return F->Done;
  }

  std::shared_ptr<const Dfa> waitOnFlight(const RegexPtr &R,
                                          const FlightPtr &F);
  std::shared_ptr<const Dfa> tierFetch(const RegexPtr &R,
                                       const obs::SynthProbe *P);
  void fulfillFlight(const RegexPtr &R, const std::shared_ptr<const Dfa> &D);

  ShardedDfaStore &Local;
  Config Cfg;

  Mutex FlightM;
  std::unordered_map<RegexPtr, FlightPtr, RegexPtrHash, RegexPtrEq>
      Flights REGEL_GUARDED_BY(FlightM);

  std::atomic<uint64_t> TierHits{0};
  std::atomic<uint64_t> TierMisses{0};
  std::atomic<uint64_t> TierPuts{0};
  std::atomic<uint64_t> TierPutSkipped{0};
  std::atomic<uint64_t> FlightServed{0};
  std::atomic<uint64_t> FlightTimeouts{0};
};

/// A sharded, thread-safe, LRU-bounded (sketch, depth, widened) ->
/// approximation memo.
class ShardedApproxStore : public SketchApproxStore {
public:
  explicit ShardedApproxStore(unsigned NumShards = 16,
                              CacheLimits Limits = {});

  bool lookup(const SketchPtr &S, unsigned Depth, bool WithClasses,
              Approx &Out) override;
  void publish(const SketchPtr &S, unsigned Depth, bool WithClasses,
               const Approx &A) override;

  size_t size() const;
  void clear();

  const CacheLimits &limits() const { return Limits; }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// The combined key hash (exposed so tests can check shard balance).
  /// Depth and the widened flag are folded through mix64 rather than
  /// XORed in raw: consecutive depths must not perturb only the low bits
  /// that pick the shard.
  static size_t hashKey(const SketchPtr &S, unsigned Depth,
                        bool WithClasses) {
    uint64_t Fields =
        (static_cast<uint64_t>(Depth) << 1) | (WithClasses ? 1u : 0u);
    return static_cast<size_t>(
        mix64(static_cast<uint64_t>(S->hash()) ^ mix64(Fields)));
  }

private:
  struct Key {
    SketchPtr S;
    unsigned Depth;
    bool WithClasses;
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return hashKey(K.S, K.Depth, K.WithClasses);
    }
  };
  struct KeyEq {
    bool operator()(const Key &A, const Key &B) const {
      return A.Depth == B.Depth && A.WithClasses == B.WithClasses &&
             sketchEquals(A.S, B.S);
    }
  };
  struct Entry {
    Key K;
    Approx A;
    bool Hot = false; ///< hit since it last reached the cold end
  };
  struct Shard {
    mutable Mutex M;
    std::list<Entry> Lru REGEL_GUARDED_BY(M); ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash, KeyEq>
        Map REGEL_GUARDED_BY(M);
  };

  Shard &shardFor(const SketchPtr &S, unsigned Depth, bool WithClasses);
  void evictOverLocked(Shard &S) REGEL_REQUIRES(S.M);

  std::vector<std::unique_ptr<Shard>> Shards;
  CacheLimits Limits;
  size_t MaxEntriesPerShard = 0;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
};

/// A sharded, thread-safe, LRU-bounded (canonical formula, domains) ->
/// Sat/Unsat verdict store — the engine-side implementation of
/// smt::VerdictStore. Verdicts are facts (solving is deterministic and
/// a Sat model is the DFS's unique smallest model), so eviction only
/// costs a re-solve, exactly like the DFA store's recompilation.
class ShardedSmtCache : public smt::VerdictStore {
public:
  explicit ShardedSmtCache(unsigned NumShards = 16, CacheLimits Limits = {});

  bool lookup(const smt::FormulaPtr &F,
              const std::vector<smt::Interval> &Domains,
              smt::SolveResult &Out) override;
  void publish(const smt::FormulaPtr &F,
               const std::vector<smt::Interval> &Domains,
               const smt::SolveResult &R) override;

  size_t size() const;
  void clear();

  const CacheLimits &limits() const { return Limits; }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// Lookups answered Unsat by the implication ring rather than an exact
  /// entry (counted separately from hits; a lookup is exactly one of
  /// hit, implied hit, or miss).
  uint64_t impliedHits() const {
    return ImpliedHits.load(std::memory_order_relaxed);
  }

  /// The combined key hash (exposed so tests can check shard balance).
  /// Hash-consing makes the formula component O(1); the domain vector is
  /// folded through mix64 so shard choice sees every bound.
  static size_t hashKey(const smt::FormulaPtr &F,
                        const std::vector<smt::Interval> &Domains);

private:
  struct Key {
    smt::FormulaPtr F;
    std::vector<smt::Interval> D;
  };
  struct KeyHash {
    size_t operator()(const Key &K) const { return hashKey(K.F, K.D); }
  };
  struct KeyEq {
    bool operator()(const Key &A, const Key &B) const {
      // Interning makes structural formula equality pointer equality.
      return A.F == B.F && A.D == B.D;
    }
  };
  struct Entry {
    Key K;
    smt::SolveResult R;
    bool Hot = false; ///< hit since it last reached the cold end
  };
  struct Shard {
    mutable Mutex M;
    std::list<Entry> Lru REGEL_GUARDED_BY(M); ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash, KeyEq>
        Map REGEL_GUARDED_BY(M);
  };

  static constexpr size_t UnsatRingCap = 32;

  Shard &shardFor(const smt::FormulaPtr &F,
                  const std::vector<smt::Interval> &Domains);
  void evictOverLocked(Shard &S) REGEL_REQUIRES(S.M);

  /// Bounded overwrite-oldest ring of keys published Unsat, global to
  /// the cache: an exact lookup shards by its OWN (formula, domains)
  /// hash, so a superset query lands in a different shard than the core
  /// that refutes it — a per-shard ring would almost never be consulted
  /// by the lookups it can answer. Its own leaf mutex, never held
  /// together with a shard lock. Advisory: a ring entry outliving its
  /// LRU twin stays sound (Unsat is a fact about the formula), and
  /// overwriting one only loses a short-circuit.
  Mutex RingM;
  std::vector<Key> UnsatRing REGEL_GUARDED_BY(RingM);
  size_t UnsatNext REGEL_GUARDED_BY(RingM) = 0;

  std::vector<std::unique_ptr<Shard>> Shards;
  CacheLimits Limits;
  size_t MaxEntriesPerShard = 0;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> ImpliedHits{0};
  std::atomic<uint64_t> Evictions{0};
};

/// The caches one engine (or several engines, when passed explicitly)
/// share across all jobs.
struct SharedCaches {
  explicit SharedCaches(unsigned NumShards = 16, CacheLimits DfaLimits = {},
                        CacheLimits ApproxLimits = {},
                        CacheLimits SmtLimits = {})
      : Dfa(NumShards, DfaLimits), Approx(NumShards, ApproxLimits),
        Smt(NumShards, SmtLimits) {}

  ShardedDfaStore Dfa;
  ShardedApproxStore Approx;
  ShardedSmtCache Smt;
};

} // namespace regel::engine

#endif // REGEL_ENGINE_CACHES_H
