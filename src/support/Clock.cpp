//===- support/Clock.cpp --------------------------------------------------===//

#include "support/Clock.h"

#include <algorithm>
#include <chrono>

using namespace regel;

const std::shared_ptr<const Clock> &Clock::steady() {
  static const std::shared_ptr<const Clock> Instance =
      std::make_shared<SteadyClock>();
  return Instance;
}

int64_t SteadyClock::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SteadyClock::waitFor(std::condition_variable &CV,
                          std::unique_lock<std::mutex> &Lock,
                          int64_t TimeoutMs,
                          const std::function<bool()> &Pred) const {
  return CV.wait_for(Lock,
                     std::chrono::milliseconds(std::max<int64_t>(TimeoutMs, 0)),
                     Pred);
}

bool ManualClock::waitFor(std::condition_variable &CV,
                          std::unique_lock<std::mutex> &Lock,
                          int64_t TimeoutMs,
                          const std::function<bool()> &Pred) const {
  const int64_t DeadlineUs = nowUs() + std::max<int64_t>(TimeoutMs, 0) * 1000;
  for (;;) {
    if (Pred())
      return true;
    if (nowUs() >= DeadlineUs)
      return Pred();
    // Short real-time slice: a notify on CV (the predicate's state changed)
    // wakes us immediately; a virtual-clock advance is noticed at the next
    // slice boundary. Real time never decides the outcome.
    CV.wait_for(Lock, std::chrono::milliseconds(1));
  }
}
