//===- support/ThreadAnnotations.h - Clang capability macros ----*- C++ -*-===//
//
// Part of the Regel reproduction. Portable wrappers for Clang's
// -Wthread-safety capability attributes, following the pattern from the
// Clang thread-safety-analysis documentation. Under Clang every macro
// expands to the corresponding attribute and the dedicated CI lane builds
// with -Wthread-safety -Werror; under GCC (the default local toolchain)
// they all expand to nothing, so annotated code compiles identically.
//
// House conventions (enforced by tools/lint.py and docs/STATIC_ANALYSIS.md):
//
//   * Every mutex member is a regel::Mutex (support/Mutex.h) — a raw
//     std::mutex carries no capability, so GUARDED_BY on fields behind it
//     would be inert.
//   * Every field a mutex protects carries REGEL_GUARDED_BY(M) — a class
//     with a mutex member and no guarded field fails the linter.
//   * Private helpers that expect the lock already held are suffixed
//     ...Locked() and carry REGEL_REQUIRES(M).
//   * Condition-variable predicate lambdas run inside the wait with the
//     lock held, but Clang analyzes a lambda body as a separate function
//     holding nothing; predicate helpers therefore carry
//     REGEL_NO_THREAD_SAFETY_ANALYSIS with a comment naming the lock
//     that the call site actually holds.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_THREADANNOTATIONS_H
#define REGEL_SUPPORT_THREADANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#define REGEL_THREAD_ATTR(x) __attribute__((x))
#else
#define REGEL_THREAD_ATTR(x) // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in warnings).
#define REGEL_CAPABILITY(x) REGEL_THREAD_ATTR(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define REGEL_SCOPED_CAPABILITY REGEL_THREAD_ATTR(scoped_lockable)

/// Field attribute: reads and writes require holding \p x.
#define REGEL_GUARDED_BY(x) REGEL_THREAD_ATTR(guarded_by(x))

/// Field attribute for pointers: the pointed-to data requires \p x.
#define REGEL_PT_GUARDED_BY(x) REGEL_THREAD_ATTR(pt_guarded_by(x))

/// Function attribute: the caller must hold the listed capabilities.
#define REGEL_REQUIRES(...) \
  REGEL_THREAD_ATTR(requires_capability(__VA_ARGS__))

/// Function attribute: acquires the listed capabilities (not held on
/// entry, held on exit).
#define REGEL_ACQUIRE(...) \
  REGEL_THREAD_ATTR(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the listed capabilities.
#define REGEL_RELEASE(...) \
  REGEL_THREAD_ATTR(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value
/// equals \p ret.
#define REGEL_TRY_ACQUIRE(ret, ...) \
  REGEL_THREAD_ATTR(try_acquire_capability(ret, __VA_ARGS__))

/// Function attribute: the caller must NOT hold the listed capabilities
/// (deadlock prevention for self-locking public APIs).
#define REGEL_EXCLUDES(...) REGEL_THREAD_ATTR(locks_excluded(__VA_ARGS__))

/// Return-value attribute: the returned reference is the capability \p x
/// (lets wrapper accessors participate in analysis).
#define REGEL_RETURN_CAPABILITY(x) REGEL_THREAD_ATTR(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must carry
/// a comment naming the lock actually held and why the analysis cannot
/// see it (typically CV-predicate helpers called from inside a wait).
#define REGEL_NO_THREAD_SAFETY_ANALYSIS \
  REGEL_THREAD_ATTR(no_thread_safety_analysis)

#endif // REGEL_SUPPORT_THREADANNOTATIONS_H
