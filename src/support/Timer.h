//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the Regel reproduction. Deadline/stopwatch utilities used by the
// search engine (time budgets) and the benchmark harnesses.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_TIMER_H
#define REGEL_SUPPORT_TIMER_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace regel {

/// A simple monotonic stopwatch.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed time in milliseconds.
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A deadline that search loops poll to honour a time budget.
///
/// A non-positive budget means "no deadline". An optional cancellation flag
/// (owned by the caller, e.g. an engine job) makes the deadline fire early:
/// every loop that already polls its budget thereby honours cooperative
/// cancellation without further plumbing.
class Deadline {
public:
  explicit Deadline(int64_t BudgetMs = 0,
                    const std::atomic<bool> *Cancel = nullptr)
      : BudgetMs(BudgetMs), Cancel(Cancel) {}

  /// Returns true once the budget is exhausted or cancellation was
  /// requested.
  bool expired() const {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      return true;
    return BudgetMs > 0 && Watch.elapsedMs() >= static_cast<double>(BudgetMs);
  }

  /// True when expired() fired through the cancellation flag.
  bool cancelled() const {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  }

  /// Milliseconds spent so far.
  double elapsedMs() const { return Watch.elapsedMs(); }

private:
  Stopwatch Watch;
  int64_t BudgetMs;
  const std::atomic<bool> *Cancel = nullptr;
};

} // namespace regel

#endif // REGEL_SUPPORT_TIMER_H
