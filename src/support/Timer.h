//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the Regel reproduction. Deadline/stopwatch utilities used by the
// search engine (time budgets) and the benchmark harnesses.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_TIMER_H
#define REGEL_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace regel {

/// A simple monotonic stopwatch.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed time in milliseconds.
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A deadline that search loops poll to honour a time budget.
///
/// A non-positive budget means "no deadline".
class Deadline {
public:
  explicit Deadline(int64_t BudgetMs = 0) : BudgetMs(BudgetMs) {}

  /// Returns true once the budget is exhausted.
  bool expired() const {
    return BudgetMs > 0 && Watch.elapsedMs() >= static_cast<double>(BudgetMs);
  }

  /// Milliseconds spent so far.
  double elapsedMs() const { return Watch.elapsedMs(); }

private:
  Stopwatch Watch;
  int64_t BudgetMs;
};

} // namespace regel

#endif // REGEL_SUPPORT_TIMER_H
