//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the Regel reproduction. Deadline/stopwatch utilities used by the
// search engine (time budgets) and the benchmark harnesses. Both run on
// the Clock seam: constructed bare they read std::chrono::steady_clock
// directly (no indirection on the hot path), constructed with a Clock they
// honour injected — possibly virtual — time, which is how the engine makes
// every budget and SLA testable under a ManualClock.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_TIMER_H
#define REGEL_SUPPORT_TIMER_H

#include "support/Clock.h"

#include <atomic>
#include <chrono>
#include <cstdint>

namespace regel {

/// A simple monotonic stopwatch, optionally on an injected Clock.
class Stopwatch {
public:
  Stopwatch() : Clk(nullptr), StartUs(steadyNowUs()) {}

  /// Runs on \p C (nullptr = steady clock). The clock must outlive the
  /// stopwatch; owners that share a clock hold the shared_ptr themselves.
  explicit Stopwatch(const Clock *C) : Clk(C), StartUs(now()) {}

  /// Restarts the stopwatch.
  void reset() { StartUs = now(); }

  /// Returns elapsed time in milliseconds.
  double elapsedMs() const {
    return static_cast<double>(now() - StartUs) / 1000.0;
  }

  /// The instant (in the clock's microsecond epoch) the watch started.
  int64_t startUs() const { return StartUs; }

private:
  static int64_t steadyNowUs() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  int64_t now() const { return Clk ? Clk->nowUs() : steadyNowUs(); }

  const Clock *Clk;
  int64_t StartUs;
};

/// A deadline that search loops poll to honour a time budget.
///
/// A non-positive budget means "no deadline". An optional cancellation flag
/// (owned by the caller, e.g. an engine job) makes the deadline fire early:
/// every loop that already polls its budget thereby honours cooperative
/// cancellation without further plumbing. An optional Clock makes the
/// budget run on injected time (the engine passes its clock through
/// SynthConfig so a search's budget expires on the same — possibly
/// virtual — timeline as the job's SLA).
class Deadline {
public:
  explicit Deadline(int64_t BudgetMs = 0,
                    const std::atomic<bool> *Cancel = nullptr,
                    const Clock *C = nullptr)
      : Watch(C), BudgetMs(BudgetMs), Cancel(Cancel) {}

  /// Returns true once the budget is exhausted or cancellation was
  /// requested.
  bool expired() const {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      return true;
    return BudgetMs > 0 && Watch.elapsedMs() >= static_cast<double>(BudgetMs);
  }

  /// True when expired() fired through the cancellation flag.
  bool cancelled() const {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  }

  /// Milliseconds spent so far.
  double elapsedMs() const { return Watch.elapsedMs(); }

private:
  Stopwatch Watch;
  int64_t BudgetMs;
  const std::atomic<bool> *Cancel = nullptr;
};

} // namespace regel

#endif // REGEL_SUPPORT_TIMER_H
