//===- support/Random.h - Deterministic RNG ---------------------*- C++ -*-===//
//
// Part of the Regel reproduction. A small splitmix64-based RNG so dataset
// generation is reproducible across platforms (std::mt19937 distributions
// are not portable across standard library implementations).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_RANDOM_H
#define REGEL_SUPPORT_RANDOM_H

#include <cstdint>
#include <vector>

namespace regel {

/// Deterministic 64-bit RNG (splitmix64). Identical streams on every
/// platform for a given seed, which keeps generated datasets stable.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, N). \p N must be positive.
  uint64_t nextBelow(uint64_t N);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Bernoulli draw with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    return Items[nextBelow(Items.size())];
  }

private:
  uint64_t State;
};

} // namespace regel

#endif // REGEL_SUPPORT_RANDOM_H
