//===- support/Strings.h - Small string utilities ---------------*- C++ -*-===//
//
// Part of the Regel reproduction. String helpers shared across modules.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_STRINGS_H
#define REGEL_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace regel {

/// Splits \p Text on any character contained in \p Seps, dropping empty
/// pieces.
std::vector<std::string> splitString(std::string_view Text,
                                     std::string_view Seps);

/// Returns \p Text with ASCII upper-case letters folded to lower case.
std::string toLower(std::string_view Text);

/// Returns true if \p Text consists solely of ASCII digits (and is nonempty).
bool isAllDigits(std::string_view Text);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Returns \p Text with leading/trailing ASCII whitespace removed.
std::string_view trim(std::string_view Text);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Escapes non-printable characters in \p Text for diagnostics.
std::string escapeString(std::string_view Text);

} // namespace regel

#endif // REGEL_SUPPORT_STRINGS_H
