//===- support/Timer.cpp --------------------------------------------------===//

#include "support/Timer.h"

// Header-only for now; this translation unit anchors the component.
