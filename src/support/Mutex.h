//===- support/Mutex.h - Annotated mutex + RAII guards ----------*- C++ -*-===//
//
// Part of the Regel reproduction. libstdc++'s std::mutex carries no
// capability attribute, so REGEL_GUARDED_BY(M) on a raw std::mutex member
// is inert — Clang has no capability to track. These thin wrappers follow
// the mutex.h pattern from the Clang thread-safety documentation (and
// absl::Mutex): regel::Mutex is the named capability, MutexLock /
// UniqueLock are the scoped acquirers, and native() bridges to the
// std::condition_variable / support/Clock.h waitFor seam, which is
// expressed in terms of std::unique_lock<std::mutex>.
//
// Zero-cost: every method is an inline forward to the std type; off
// Clang the attributes vanish entirely.
//
// CV-wait convention: a condition variable wait releases and reacquires
// the underlying mutex, but analysis-wise the capability is held for the
// whole wait (the standard treatment — the predicate and the code after
// the wait both run under the lock). Predicate lambdas are analyzed as
// separate functions holding nothing, so guarded-field predicates live in
// REGEL_NO_THREAD_SAFETY_ANALYSIS helpers or inline wait loops instead.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_MUTEX_H
#define REGEL_SUPPORT_MUTEX_H

#include "support/ThreadAnnotations.h"

#include <mutex>

namespace regel {

/// std::mutex as a named Clang capability.
class REGEL_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() REGEL_ACQUIRE() { M.lock(); }
  void unlock() REGEL_RELEASE() { M.unlock(); }
  bool try_lock() REGEL_TRY_ACQUIRE(true) { return M.try_lock(); }

  /// The wrapped mutex, for std::condition_variable and the Clock seam.
  /// Callers must already hold this capability as far as the analysis is
  /// concerned — take it through UniqueLock::native(), not here.
  std::mutex &native() { return M; }

private:
  // The one legitimate bare std::mutex member in the tree: this class IS
  // the capability the guarded-mutex lint rule wants everything else to
  // declare fields against.
  std::mutex M; // lint:allow guarded-mutex
};

/// std::lock_guard over a regel::Mutex (scoped, non-releasable).
class REGEL_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) REGEL_ACQUIRE(M) : G(M.native()) {}
  ~MutexLock() REGEL_RELEASE() = default;

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  std::lock_guard<std::mutex> G;
};

/// std::unique_lock over a regel::Mutex: supports early unlock/relock and
/// exposes the underlying std::unique_lock for CV waits (Clock::waitFor,
/// std::condition_variable::wait*).
class REGEL_SCOPED_CAPABILITY UniqueLock {
public:
  explicit UniqueLock(Mutex &M) REGEL_ACQUIRE(M) : L(M.native()) {}
  ~UniqueLock() REGEL_RELEASE() = default; // releases only if still held

  UniqueLock(const UniqueLock &) = delete;
  UniqueLock &operator=(const UniqueLock &) = delete;

  void lock() REGEL_ACQUIRE() { L.lock(); }
  void unlock() REGEL_RELEASE() { L.unlock(); }

  /// The wrapped lock, for std::condition_variable::wait* and
  /// support/Clock.h's waitFor. The capability remains held across the
  /// wait as far as the analysis is concerned.
  std::unique_lock<std::mutex> &native() { return L; }

private:
  std::unique_lock<std::mutex> L;
};

} // namespace regel

#endif // REGEL_SUPPORT_MUTEX_H
