//===- support/Random.cpp -------------------------------------------------===//

#include "support/Random.h"

#include <cassert>

using namespace regel;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t Rng::nextBelow(uint64_t N) {
  assert(N > 0 && "nextBelow needs a positive bound");
  // Rejection sampling to avoid modulo bias.
  uint64_t Limit = UINT64_MAX - UINT64_MAX % N;
  uint64_t V = next();
  while (V >= Limit)
    V = next();
  return V % N;
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(
                  nextBelow(static_cast<uint64_t>(Hi - Lo + 1)));
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && Num <= Den && "probability out of range");
  return nextBelow(Den) < Num;
}
