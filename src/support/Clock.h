//===- support/Clock.h - Injectable monotonic time source -------*- C++ -*-===//
//
// Part of the Regel reproduction. The engine-wide time seam: every place
// that reads "now" for a semantic decision — job residency SLAs, search
// deadlines, timed waits, queue-wait accounting — goes through a Clock so
// tests can substitute a ManualClock that advances only when told. That
// turns every SLA/deadline/timeout test from "sleep and hope the margin
// holds" into exact-tick assertions that run in milliseconds of wall time.
//
// Two implementations:
//
//   * SteadyClock — std::chrono::steady_clock, the production default.
//     Its waitFor is a plain condition_variable::wait_for, so the seam
//     costs nothing on the serving path.
//   * ManualClock — virtual time, advanced explicitly by the test. Its
//     waitFor decides timeouts purely in virtual time; real time only
//     bounds how quickly a waiter notices an advance (a short poll), never
//     whether it times out. Outcomes are deterministic.
//
// The waitable half of the seam matters as much as now(): a
// SynthJob::waitFor(50) must time out when 50 *virtual* milliseconds have
// passed, or a ManualClock test could never exercise timeout paths.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SUPPORT_CLOCK_H
#define REGEL_SUPPORT_CLOCK_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

namespace regel {

/// A monotonic time source plus the ability to wait against it.
class Clock {
public:
  virtual ~Clock() = default;

  /// Monotonic now in microseconds since an arbitrary (per-clock) epoch.
  virtual int64_t nowUs() const = 0;

  /// Waits on \p CV (with \p Lock held, as for condition_variable::wait)
  /// until \p Pred returns true or \p TimeoutMs of THIS clock's time
  /// passes. Returns Pred() at exit — exactly the contract of
  /// condition_variable::wait_for with a predicate. A non-positive
  /// timeout is a poll: Pred is evaluated once and the call returns.
  virtual bool waitFor(std::condition_variable &CV,
                       std::unique_lock<std::mutex> &Lock, int64_t TimeoutMs,
                       const std::function<bool()> &Pred) const = 0;

  double nowMs() const { return static_cast<double>(nowUs()) / 1000.0; }

  /// The process-wide production clock (a SteadyClock). Components take a
  /// shared_ptr so a job handle outliving its engine still has a valid
  /// time source.
  static const std::shared_ptr<const Clock> &steady();
};

/// std::chrono::steady_clock behind the seam. Stateless.
class SteadyClock : public Clock {
public:
  int64_t nowUs() const override;
  bool waitFor(std::condition_variable &CV, std::unique_lock<std::mutex> &Lock,
               int64_t TimeoutMs,
               const std::function<bool()> &Pred) const override;
};

/// Virtual time for tests: nowUs() moves only via advance/set. Thread-safe
/// (tests advance from one thread while workers and waiters read).
///
/// waitFor resolves its timeout in virtual time: the waiter re-checks the
/// virtual deadline on every wakeup and otherwise sleeps in short real
/// slices, so an advance from another thread is observed within ~a
/// millisecond of real time without any notification plumbing between the
/// clock and the (caller-owned) condition variable. The *outcome* — timed
/// out or predicate satisfied — depends only on virtual time and the
/// predicate, which is what makes tests deterministic.
class ManualClock : public Clock {
public:
  explicit ManualClock(int64_t StartUs = 0) : Now(StartUs) {}

  int64_t nowUs() const override {
    return Now.load(std::memory_order_acquire);
  }

  bool waitFor(std::condition_variable &CV, std::unique_lock<std::mutex> &Lock,
               int64_t TimeoutMs,
               const std::function<bool()> &Pred) const override;

  void advanceUs(int64_t Us) {
    Now.fetch_add(Us, std::memory_order_acq_rel);
  }
  void advanceMs(int64_t Ms) { advanceUs(Ms * 1000); }

private:
  std::atomic<int64_t> Now;
};

} // namespace regel

#endif // REGEL_SUPPORT_CLOCK_H
