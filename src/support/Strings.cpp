//===- support/Strings.cpp ------------------------------------------------===//

#include "support/Strings.h"

#include <cctype>

using namespace regel;

std::vector<std::string> regel::splitString(std::string_view Text,
                                            std::string_view Seps) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : Text) {
    if (Seps.find(C) != std::string_view::npos) {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
      continue;
    }
    Cur.push_back(C);
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

std::string regel::toLower(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text)
    Out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
  return Out;
}

bool regel::isAllDigits(std::string_view Text) {
  if (Text.empty())
    return false;
  for (char C : Text)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

std::string regel::joinStrings(const std::vector<std::string> &Parts,
                               std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string_view regel::trim(std::string_view Text) {
  size_t B = 0, E = Text.size();
  while (B < E && std::isspace(static_cast<unsigned char>(Text[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(Text[E - 1])))
    --E;
  return Text.substr(B, E - B);
}

bool regel::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string regel::escapeString(std::string_view Text) {
  std::string Out;
  for (char C : Text) {
    if (std::isprint(static_cast<unsigned char>(C))) {
      Out.push_back(C);
      continue;
    }
    char Buf[8];
    std::snprintf(Buf, sizeof(Buf), "\\x%02x", static_cast<unsigned char>(C));
    Out += Buf;
  }
  return Out;
}
