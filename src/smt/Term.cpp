//===- smt/Term.cpp -------------------------------------------------------===//

#include "smt/Term.h"

#include <algorithm>
#include <cassert>

using namespace regel::smt;

int64_t regel::smt::satAdd(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "extended naturals only");
  if (A == Infinity || B == Infinity)
    return Infinity;
  if (A > Infinity - B)
    return Infinity;
  return A + B;
}

int64_t regel::smt::satMul(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "extended naturals only");
  if (A == 0 || B == 0)
    return 0;
  if (A == Infinity || B == Infinity)
    return Infinity;
  if (A > Infinity / B)
    return Infinity;
  return A * B;
}

TermPtr Term::constant(int64_t V) {
  assert(V >= 0 && "terms range over extended naturals");
  return TermPtr(new Term(TermKind::Const, V, 0, nullptr, nullptr));
}

TermPtr Term::var(VarId V) {
  return TermPtr(new Term(TermKind::Var, 0, V, nullptr, nullptr));
}

TermPtr Term::add(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  // Constant folding keeps encoder output small.
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(satAdd(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == 0)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == 0)
    return A;
  return TermPtr(
      new Term(TermKind::Add, 0, 0, std::move(A), std::move(B)));
}

TermPtr Term::mul(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(satMul(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == 1)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == 1)
    return A;
  if ((A->getKind() == TermKind::Const && A->getValue() == 0) ||
      (B->getKind() == TermKind::Const && B->getValue() == 0))
    return constant(0);
  return TermPtr(
      new Term(TermKind::Mul, 0, 0, std::move(A), std::move(B)));
}

TermPtr Term::min(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(std::min(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == Infinity)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == Infinity)
    return A;
  return TermPtr(new Term(TermKind::Min, 0, 0, std::move(A), std::move(B)));
}

TermPtr Term::max(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(std::max(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == 0)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == 0)
    return A;
  return TermPtr(new Term(TermKind::Max, 0, 0, std::move(A), std::move(B)));
}

Interval Term::eval(const std::vector<Interval> &Domains) const {
  switch (Kind) {
  case TermKind::Const:
    return {Value, Value};
  case TermKind::Var:
    assert(Var < Domains.size() && "undeclared variable");
    return Domains[Var];
  case TermKind::Add: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {satAdd(A.Lo, B.Lo), satAdd(A.Hi, B.Hi)};
  }
  case TermKind::Mul: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {satMul(A.Lo, B.Lo), satMul(A.Hi, B.Hi)};
  }
  case TermKind::Min: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
  }
  case TermKind::Max: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
  }
  }
  assert(false && "unknown term kind");
  return {};
}

int64_t Term::evalPoint(const std::vector<int64_t> &Assignment) const {
  switch (Kind) {
  case TermKind::Const:
    return Value;
  case TermKind::Var:
    assert(Var < Assignment.size() && "undeclared variable");
    return Assignment[Var];
  case TermKind::Add:
    return satAdd(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  case TermKind::Mul:
    return satMul(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  case TermKind::Min:
    return std::min(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  case TermKind::Max:
    return std::max(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  }
  assert(false && "unknown term kind");
  return 0;
}

void Term::collectVars(std::vector<VarId> &Out) const {
  switch (Kind) {
  case TermKind::Const:
    return;
  case TermKind::Var:
    Out.push_back(Var);
    return;
  case TermKind::Add:
  case TermKind::Mul:
  case TermKind::Min:
  case TermKind::Max:
    Lhs->collectVars(Out);
    Rhs->collectVars(Out);
    return;
  }
}

std::string Term::str() const {
  switch (Kind) {
  case TermKind::Const:
    return Value == Infinity ? "inf" : std::to_string(Value);
  case TermKind::Var:
    return "k" + std::to_string(Var);
  case TermKind::Add:
    return "(" + Lhs->str() + " + " + Rhs->str() + ")";
  case TermKind::Mul:
    return "(" + Lhs->str() + " * " + Rhs->str() + ")";
  case TermKind::Min:
    return "min(" + Lhs->str() + ", " + Rhs->str() + ")";
  case TermKind::Max:
    return "max(" + Lhs->str() + ", " + Rhs->str() + ")";
  }
  return "?";
}
