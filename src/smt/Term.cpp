//===- smt/Term.cpp -------------------------------------------------------===//

#include "smt/Term.h"

#include "support/Mutex.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace regel;
using namespace regel::smt;

namespace {

/// Interning key. Children are compared by pointer: they are interned
/// first, so structural equality below a node IS pointer equality. The
/// structural hash is precomputed and stored so neither hashing nor
/// equality ever dereferences L/R — an expired entry's key may point at
/// freed children, which is safe to compare by address and nothing else.
struct TermKey {
  TermKind Kind;
  int64_t Value;
  VarId Var;
  const Term *L;
  const Term *R;
  uint64_t H;
};

struct TermKeyHash {
  size_t operator()(const TermKey &K) const { return static_cast<size_t>(K.H); }
};

struct TermKeyEq {
  bool operator()(const TermKey &A, const TermKey &B) const {
    return A.Kind == B.Kind && A.Value == B.Value && A.Var == B.Var &&
           A.L == B.L && A.R == B.R;
  }
};

/// One shard of the process-global hash-consing table. Entries are weak
/// so interning never extends a term's lifetime; expired slots are swept
/// opportunistically once a shard doubles since its last sweep (terms
/// never unregister themselves — their destructor must stay
/// interner-free so static destruction order cannot bite).
struct InternShard {
  Mutex M;
  std::unordered_map<TermKey, std::weak_ptr<const Term>, TermKeyHash,
                     TermKeyEq>
      Map REGEL_GUARDED_BY(M);
  size_t SweepAt REGEL_GUARDED_BY(M) = 64;
};

constexpr unsigned NumInternShards = 8;

InternShard &termShard(uint64_t Hash) {
  static InternShard Shards[NumInternShards];
  return Shards[hashMix(Hash) % NumInternShards];
}

uint64_t termHash(TermKind Kind, int64_t Value, VarId Var, const Term *L,
                  const Term *R) {
  uint64_t H = hashMix(static_cast<uint64_t>(Kind) + 0x517cc1b727220a95ull);
  switch (Kind) {
  case TermKind::Const:
    return hashCombine(H, static_cast<uint64_t>(Value));
  case TermKind::Var:
    return hashCombine(H, static_cast<uint64_t>(Var));
  default:
    return hashCombine(hashCombine(H, L->hash()), R->hash());
  }
}

} // namespace

TermPtr Term::intern(TermKind Kind, int64_t Value, VarId Var, TermPtr Lhs,
                     TermPtr Rhs) {
  const uint64_t H = termHash(Kind, Value, Var, Lhs.get(), Rhs.get());
  TermKey K{Kind, Value, Var, Lhs.get(), Rhs.get(), H};
  InternShard &S = termShard(H);
  MutexLock Guard(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end())
    if (TermPtr P = It->second.lock())
      return P;
  TermPtr P(new Term(Kind, Value, Var, std::move(Lhs), std::move(Rhs), H));
  S.Map[K] = P;
  if (S.Map.size() >= S.SweepAt) {
    for (auto I = S.Map.begin(); I != S.Map.end();)
      I = I->second.expired() ? S.Map.erase(I) : std::next(I);
    S.SweepAt = std::max<size_t>(64, S.Map.size() * 2);
  }
  return P;
}

int Term::compare(const Term &A, const Term &B) {
  if (&A == &B)
    return 0;
  if (A.Kind != B.Kind)
    return static_cast<int>(A.Kind) < static_cast<int>(B.Kind) ? -1 : 1;
  switch (A.Kind) {
  case TermKind::Const:
    return A.Value < B.Value ? -1 : A.Value > B.Value ? 1 : 0;
  case TermKind::Var:
    return A.Var < B.Var ? -1 : A.Var > B.Var ? 1 : 0;
  default:
    if (int C = compare(*A.Lhs, *B.Lhs))
      return C;
    return compare(*A.Rhs, *B.Rhs);
  }
}

namespace {

/// Canonical operand order for the commutative constructors: smaller
/// term first under Term::compare. Deterministic (structural, not
/// allocation-order), so equal operand multisets intern to one node.
void orderCommutative(TermPtr &A, TermPtr &B) {
  if (Term::compare(*A, *B) > 0)
    std::swap(A, B);
}

} // namespace

int64_t regel::smt::satAdd(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "extended naturals only");
  if (A == Infinity || B == Infinity)
    return Infinity;
  if (A > Infinity - B)
    return Infinity;
  return A + B;
}

int64_t regel::smt::satMul(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "extended naturals only");
  if (A == 0 || B == 0)
    return 0;
  if (A == Infinity || B == Infinity)
    return Infinity;
  if (A > Infinity / B)
    return Infinity;
  return A * B;
}

TermPtr Term::constant(int64_t V) {
  assert(V >= 0 && "terms range over extended naturals");
  return intern(TermKind::Const, V, 0, nullptr, nullptr);
}

TermPtr Term::var(VarId V) {
  return intern(TermKind::Var, 0, V, nullptr, nullptr);
}

TermPtr Term::add(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  // Constant folding keeps encoder output small.
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(satAdd(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == 0)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == 0)
    return A;
  orderCommutative(A, B);
  return intern(TermKind::Add, 0, 0, std::move(A), std::move(B));
}

TermPtr Term::mul(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(satMul(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == 1)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == 1)
    return A;
  if ((A->getKind() == TermKind::Const && A->getValue() == 0) ||
      (B->getKind() == TermKind::Const && B->getValue() == 0))
    return constant(0);
  orderCommutative(A, B);
  return intern(TermKind::Mul, 0, 0, std::move(A), std::move(B));
}

TermPtr Term::min(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(std::min(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == Infinity)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == Infinity)
    return A;
  orderCommutative(A, B);
  return intern(TermKind::Min, 0, 0, std::move(A), std::move(B));
}

TermPtr Term::max(TermPtr A, TermPtr B) {
  assert(A && B && "null term");
  if (A->getKind() == TermKind::Const && B->getKind() == TermKind::Const)
    return constant(std::max(A->getValue(), B->getValue()));
  if (A->getKind() == TermKind::Const && A->getValue() == 0)
    return B;
  if (B->getKind() == TermKind::Const && B->getValue() == 0)
    return A;
  orderCommutative(A, B);
  return intern(TermKind::Max, 0, 0, std::move(A), std::move(B));
}

Interval Term::eval(const std::vector<Interval> &Domains) const {
  switch (Kind) {
  case TermKind::Const:
    return {Value, Value};
  case TermKind::Var:
    assert(Var < Domains.size() && "undeclared variable");
    return Domains[Var];
  case TermKind::Add: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {satAdd(A.Lo, B.Lo), satAdd(A.Hi, B.Hi)};
  }
  case TermKind::Mul: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {satMul(A.Lo, B.Lo), satMul(A.Hi, B.Hi)};
  }
  case TermKind::Min: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
  }
  case TermKind::Max: {
    Interval A = Lhs->eval(Domains);
    Interval B = Rhs->eval(Domains);
    return {std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
  }
  }
  assert(false && "unknown term kind");
  return {};
}

int64_t Term::evalPoint(const std::vector<int64_t> &Assignment) const {
  switch (Kind) {
  case TermKind::Const:
    return Value;
  case TermKind::Var:
    assert(Var < Assignment.size() && "undeclared variable");
    return Assignment[Var];
  case TermKind::Add:
    return satAdd(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  case TermKind::Mul:
    return satMul(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  case TermKind::Min:
    return std::min(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  case TermKind::Max:
    return std::max(Lhs->evalPoint(Assignment), Rhs->evalPoint(Assignment));
  }
  assert(false && "unknown term kind");
  return 0;
}

void Term::collectVars(std::vector<VarId> &Out) const {
  switch (Kind) {
  case TermKind::Const:
    return;
  case TermKind::Var:
    Out.push_back(Var);
    return;
  case TermKind::Add:
  case TermKind::Mul:
  case TermKind::Min:
  case TermKind::Max:
    Lhs->collectVars(Out);
    Rhs->collectVars(Out);
    return;
  }
}

std::string Term::str() const {
  switch (Kind) {
  case TermKind::Const:
    return Value == Infinity ? "inf" : std::to_string(Value);
  case TermKind::Var:
    return "k" + std::to_string(Var);
  case TermKind::Add:
    return "(" + Lhs->str() + " + " + Rhs->str() + ")";
  case TermKind::Mul:
    return "(" + Lhs->str() + " * " + Rhs->str() + ")";
  case TermKind::Min:
    return "min(" + Lhs->str() + ", " + Rhs->str() + ")";
  case TermKind::Max:
    return "max(" + Lhs->str() + ", " + Rhs->str() + ")";
  }
  return "?";
}
