//===- smt/Formula.cpp ----------------------------------------------------===//

#include "smt/Formula.h"

#include <algorithm>
#include <cassert>

using namespace regel::smt;

FormulaPtr Formula::truth() {
  return FormulaPtr(
      new Formula(FormulaKind::True, CmpOp::Le, nullptr, nullptr, {}));
}

FormulaPtr Formula::falsity() {
  return FormulaPtr(
      new Formula(FormulaKind::False, CmpOp::Le, nullptr, nullptr, {}));
}

FormulaPtr Formula::atom(CmpOp Op, TermPtr Lhs, TermPtr Rhs) {
  assert(Lhs && Rhs && "null atom operand");
  return FormulaPtr(new Formula(FormulaKind::Atom, Op, std::move(Lhs),
                                std::move(Rhs), {}));
}

FormulaPtr Formula::conj(std::vector<FormulaPtr> Parts) {
  std::vector<FormulaPtr> Kept;
  for (FormulaPtr &P : Parts) {
    assert(P && "null conjunct");
    if (P->Kind == FormulaKind::False)
      return falsity();
    if (P->Kind == FormulaKind::True)
      continue;
    if (P->Kind == FormulaKind::And) {
      for (const FormulaPtr &Q : P->Parts)
        Kept.push_back(Q);
      continue;
    }
    Kept.push_back(std::move(P));
  }
  if (Kept.empty())
    return truth();
  if (Kept.size() == 1)
    return Kept[0];
  return FormulaPtr(
      new Formula(FormulaKind::And, CmpOp::Le, nullptr, nullptr,
                  std::move(Kept)));
}

FormulaPtr Formula::disj(std::vector<FormulaPtr> Parts) {
  std::vector<FormulaPtr> Kept;
  for (FormulaPtr &P : Parts) {
    assert(P && "null disjunct");
    if (P->Kind == FormulaKind::True)
      return truth();
    if (P->Kind == FormulaKind::False)
      continue;
    if (P->Kind == FormulaKind::Or) {
      for (const FormulaPtr &Q : P->Parts)
        Kept.push_back(Q);
      continue;
    }
    Kept.push_back(std::move(P));
  }
  if (Kept.empty())
    return falsity();
  if (Kept.size() == 1)
    return Kept[0];
  return FormulaPtr(
      new Formula(FormulaKind::Or, CmpOp::Le, nullptr, nullptr,
                  std::move(Kept)));
}

namespace {

Tri evalCmp(CmpOp Op, const Interval &A, const Interval &B) {
  switch (Op) {
  case CmpOp::Le:
    if (A.Hi <= B.Lo)
      return Tri::True;
    if (A.Lo > B.Hi)
      return Tri::False;
    return Tri::Unknown;
  case CmpOp::Ge:
    return evalCmp(CmpOp::Le, B, A);
  case CmpOp::Eq:
    if (A.isPoint() && B.isPoint())
      return A.Lo == B.Lo ? Tri::True : Tri::False;
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Tri::False;
    return Tri::Unknown;
  case CmpOp::Ne:
    if (A.isPoint() && B.isPoint())
      return A.Lo != B.Lo ? Tri::True : Tri::False;
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Tri::True;
    return Tri::Unknown;
  }
  assert(false && "unknown comparison");
  return Tri::Unknown;
}

} // namespace

Tri Formula::eval(const std::vector<Interval> &Domains) const {
  switch (Kind) {
  case FormulaKind::True:
    return Tri::True;
  case FormulaKind::False:
    return Tri::False;
  case FormulaKind::Atom:
    return evalCmp(Op, Lhs->eval(Domains), Rhs->eval(Domains));
  case FormulaKind::And: {
    bool AnyUnknown = false;
    for (const FormulaPtr &P : Parts) {
      Tri T = P->eval(Domains);
      if (T == Tri::False)
        return Tri::False;
      if (T == Tri::Unknown)
        AnyUnknown = true;
    }
    return AnyUnknown ? Tri::Unknown : Tri::True;
  }
  case FormulaKind::Or: {
    bool AnyUnknown = false;
    for (const FormulaPtr &P : Parts) {
      Tri T = P->eval(Domains);
      if (T == Tri::True)
        return Tri::True;
      if (T == Tri::Unknown)
        AnyUnknown = true;
    }
    return AnyUnknown ? Tri::Unknown : Tri::False;
  }
  }
  assert(false && "unknown formula kind");
  return Tri::Unknown;
}

bool Formula::evalPoint(const std::vector<int64_t> &Assignment) const {
  switch (Kind) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom: {
    int64_t A = Lhs->evalPoint(Assignment);
    int64_t B = Rhs->evalPoint(Assignment);
    switch (Op) {
    case CmpOp::Le:
      return A <= B;
    case CmpOp::Ge:
      return A >= B;
    case CmpOp::Eq:
      return A == B;
    case CmpOp::Ne:
      return A != B;
    }
    return false;
  }
  case FormulaKind::And:
    for (const FormulaPtr &P : Parts)
      if (!P->evalPoint(Assignment))
        return false;
    return true;
  case FormulaKind::Or:
    for (const FormulaPtr &P : Parts)
      if (P->evalPoint(Assignment))
        return true;
    return false;
  }
  assert(false && "unknown formula kind");
  return false;
}

void Formula::collectVars(std::vector<VarId> &Out) const {
  switch (Kind) {
  case FormulaKind::True:
  case FormulaKind::False:
    return;
  case FormulaKind::Atom:
    Lhs->collectVars(Out);
    Rhs->collectVars(Out);
    return;
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const FormulaPtr &P : Parts)
      P->collectVars(Out);
    return;
  }
}

std::vector<VarId> Formula::vars() const {
  std::vector<VarId> Out;
  collectVars(Out);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::string Formula::str() const {
  switch (Kind) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Atom: {
    const char *OpStr = "?";
    switch (Op) {
    case CmpOp::Le:
      OpStr = "<=";
      break;
    case CmpOp::Ge:
      OpStr = ">=";
      break;
    case CmpOp::Eq:
      OpStr = "=";
      break;
    case CmpOp::Ne:
      OpStr = "!=";
      break;
    }
    return Lhs->str() + " " + OpStr + " " + Rhs->str();
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::string Sep = Kind == FormulaKind::And ? " & " : " | ";
    std::string Out = "(";
    for (size_t I = 0; I < Parts.size(); ++I) {
      if (I)
        Out += Sep;
      Out += Parts[I]->str();
    }
    return Out + ")";
  }
  }
  return "?";
}
