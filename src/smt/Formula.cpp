//===- smt/Formula.cpp ----------------------------------------------------===//

#include "smt/Formula.h"

#include "support/Mutex.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace regel;
using namespace regel::smt;

namespace {

/// Interning key; same discipline as the term interner — children by
/// pointer (interned first, so pointer equality is structural equality),
/// hash precomputed so expired entries' dangling child pointers are only
/// ever compared by address.
struct FormulaKey {
  FormulaKind Kind;
  CmpOp Op;
  const Term *L;
  const Term *R;
  std::vector<const Formula *> Parts;
  uint64_t H;
};

struct FormulaKeyHash {
  size_t operator()(const FormulaKey &K) const {
    return static_cast<size_t>(K.H);
  }
};

struct FormulaKeyEq {
  bool operator()(const FormulaKey &A, const FormulaKey &B) const {
    return A.Kind == B.Kind && A.Op == B.Op && A.L == B.L && A.R == B.R &&
           A.Parts == B.Parts;
  }
};

struct FormulaInternShard {
  Mutex M;
  std::unordered_map<FormulaKey, std::weak_ptr<const Formula>,
                     FormulaKeyHash, FormulaKeyEq>
      Map REGEL_GUARDED_BY(M);
  size_t SweepAt REGEL_GUARDED_BY(M) = 64;
};

constexpr unsigned NumInternShards = 8;

FormulaInternShard &formulaShard(uint64_t Hash) {
  static FormulaInternShard Shards[NumInternShards];
  return Shards[hashMix(Hash) % NumInternShards];
}

uint64_t formulaHash(FormulaKind Kind, CmpOp Op, const Term *L,
                     const Term *R,
                     const std::vector<const Formula *> &Parts) {
  uint64_t H = hashMix(static_cast<uint64_t>(Kind) + 0x2545f4914f6cdd1dull);
  switch (Kind) {
  case FormulaKind::True:
  case FormulaKind::False:
    return H;
  case FormulaKind::Atom:
    H = hashCombine(H, static_cast<uint64_t>(Op));
    return hashCombine(hashCombine(H, L->hash()), R->hash());
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *P : Parts)
      H = hashCombine(H, P->hash());
    return H;
  }
  return H;
}

std::vector<const Formula *> rawParts(const std::vector<FormulaPtr> &Parts) {
  std::vector<const Formula *> Raw;
  Raw.reserve(Parts.size());
  for (const FormulaPtr &P : Parts)
    Raw.push_back(P.get());
  return Raw;
}

/// Canonicalizes a flattened part list in place: deterministic structural
/// sort, then de-duplication (interning makes duplicate parts
/// pointer-equal and compare()==0).
void canonicalizeParts(std::vector<FormulaPtr> &Parts) {
  std::sort(Parts.begin(), Parts.end(),
            [](const FormulaPtr &A, const FormulaPtr &B) {
              return Formula::compare(*A, *B) < 0;
            });
  Parts.erase(std::unique(Parts.begin(), Parts.end()), Parts.end());
}

} // namespace

FormulaPtr Formula::intern(FormulaKind Kind, CmpOp Op, TermPtr Lhs,
                           TermPtr Rhs, std::vector<FormulaPtr> Parts) {
  FormulaKey K{Kind, Op, Lhs.get(), Rhs.get(), rawParts(Parts), 0};
  K.H = formulaHash(Kind, Op, K.L, K.R, K.Parts);
  FormulaInternShard &S = formulaShard(K.H);
  MutexLock Guard(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end())
    if (FormulaPtr P = It->second.lock())
      return P;
  FormulaPtr P(new Formula(Kind, Op, std::move(Lhs), std::move(Rhs),
                           std::move(Parts), K.H));
  S.Map[std::move(K)] = P;
  if (S.Map.size() >= S.SweepAt) {
    for (auto I = S.Map.begin(); I != S.Map.end();)
      I = I->second.expired() ? S.Map.erase(I) : std::next(I);
    S.SweepAt = std::max<size_t>(64, S.Map.size() * 2);
  }
  return P;
}

int Formula::compare(const Formula &A, const Formula &B) {
  if (&A == &B)
    return 0;
  if (A.Kind != B.Kind)
    return static_cast<int>(A.Kind) < static_cast<int>(B.Kind) ? -1 : 1;
  switch (A.Kind) {
  case FormulaKind::True:
  case FormulaKind::False:
    return 0;
  case FormulaKind::Atom: {
    if (A.Op != B.Op)
      return static_cast<int>(A.Op) < static_cast<int>(B.Op) ? -1 : 1;
    if (int C = Term::compare(*A.Lhs, *B.Lhs))
      return C;
    return Term::compare(*A.Rhs, *B.Rhs);
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    const size_t N = std::min(A.Parts.size(), B.Parts.size());
    for (size_t I = 0; I < N; ++I)
      if (int C = compare(*A.Parts[I], *B.Parts[I]))
        return C;
    return A.Parts.size() < B.Parts.size()
               ? -1
               : A.Parts.size() > B.Parts.size() ? 1 : 0;
  }
  }
  return 0;
}

FormulaPtr Formula::truth() {
  return intern(FormulaKind::True, CmpOp::Le, nullptr, nullptr, {});
}

FormulaPtr Formula::falsity() {
  return intern(FormulaKind::False, CmpOp::Le, nullptr, nullptr, {});
}

FormulaPtr Formula::atom(CmpOp Op, TermPtr Lhs, TermPtr Rhs) {
  assert(Lhs && Rhs && "null atom operand");
  return intern(FormulaKind::Atom, Op, std::move(Lhs), std::move(Rhs), {});
}

FormulaPtr Formula::conj(std::vector<FormulaPtr> Parts) {
  std::vector<FormulaPtr> Kept;
  for (FormulaPtr &P : Parts) {
    assert(P && "null conjunct");
    if (P->Kind == FormulaKind::False)
      return falsity();
    if (P->Kind == FormulaKind::True)
      continue;
    if (P->Kind == FormulaKind::And) {
      for (const FormulaPtr &Q : P->Parts)
        Kept.push_back(Q);
      continue;
    }
    Kept.push_back(std::move(P));
  }
  canonicalizeParts(Kept);
  if (Kept.empty())
    return truth();
  if (Kept.size() == 1)
    return Kept[0];
  return intern(FormulaKind::And, CmpOp::Le, nullptr, nullptr,
                std::move(Kept));
}

FormulaPtr Formula::disj(std::vector<FormulaPtr> Parts) {
  std::vector<FormulaPtr> Kept;
  for (FormulaPtr &P : Parts) {
    assert(P && "null disjunct");
    if (P->Kind == FormulaKind::True)
      return truth();
    if (P->Kind == FormulaKind::False)
      continue;
    if (P->Kind == FormulaKind::Or) {
      for (const FormulaPtr &Q : P->Parts)
        Kept.push_back(Q);
      continue;
    }
    Kept.push_back(std::move(P));
  }
  canonicalizeParts(Kept);
  if (Kept.empty())
    return falsity();
  if (Kept.size() == 1)
    return Kept[0];
  return intern(FormulaKind::Or, CmpOp::Le, nullptr, nullptr,
                std::move(Kept));
}

bool regel::smt::conjSubset(const FormulaPtr &Sub, const FormulaPtr &Sup) {
  assert(Sub && Sup && "null formula");
  auto Conjuncts = [](const FormulaPtr &F,
                      std::vector<FormulaPtr> &Single)
      -> const std::vector<FormulaPtr> & {
    if (F->getKind() == FormulaKind::And)
      return F->getParts();
    if (F->getKind() == FormulaKind::True)
      return Single; // empty: truth constrains nothing
    Single.push_back(F);
    return Single;
  };
  std::vector<FormulaPtr> SubSingle, SupSingle;
  const std::vector<FormulaPtr> &SubParts = Conjuncts(Sub, SubSingle);
  const std::vector<FormulaPtr> &SupParts = Conjuncts(Sup, SupSingle);
  // Both lists are in canonical ascending order (conj sorts; a singleton
  // is trivially sorted), so subset is one merge pass. Membership is
  // pointer equality thanks to interning.
  size_t J = 0;
  for (const FormulaPtr &P : SubParts) {
    while (J < SupParts.size() && Formula::compare(*SupParts[J], *P) < 0)
      ++J;
    if (J == SupParts.size() || SupParts[J] != P)
      return false;
    ++J;
  }
  return true;
}

namespace {

Tri evalCmp(CmpOp Op, const Interval &A, const Interval &B) {
  switch (Op) {
  case CmpOp::Le:
    if (A.Hi <= B.Lo)
      return Tri::True;
    if (A.Lo > B.Hi)
      return Tri::False;
    return Tri::Unknown;
  case CmpOp::Ge:
    return evalCmp(CmpOp::Le, B, A);
  case CmpOp::Eq:
    if (A.isPoint() && B.isPoint())
      return A.Lo == B.Lo ? Tri::True : Tri::False;
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Tri::False;
    return Tri::Unknown;
  case CmpOp::Ne:
    if (A.isPoint() && B.isPoint())
      return A.Lo != B.Lo ? Tri::True : Tri::False;
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Tri::True;
    return Tri::Unknown;
  }
  assert(false && "unknown comparison");
  return Tri::Unknown;
}

} // namespace

Tri Formula::eval(const std::vector<Interval> &Domains) const {
  switch (Kind) {
  case FormulaKind::True:
    return Tri::True;
  case FormulaKind::False:
    return Tri::False;
  case FormulaKind::Atom:
    return evalCmp(Op, Lhs->eval(Domains), Rhs->eval(Domains));
  case FormulaKind::And: {
    bool AnyUnknown = false;
    for (const FormulaPtr &P : Parts) {
      Tri T = P->eval(Domains);
      if (T == Tri::False)
        return Tri::False;
      if (T == Tri::Unknown)
        AnyUnknown = true;
    }
    return AnyUnknown ? Tri::Unknown : Tri::True;
  }
  case FormulaKind::Or: {
    bool AnyUnknown = false;
    for (const FormulaPtr &P : Parts) {
      Tri T = P->eval(Domains);
      if (T == Tri::True)
        return Tri::True;
      if (T == Tri::Unknown)
        AnyUnknown = true;
    }
    return AnyUnknown ? Tri::Unknown : Tri::False;
  }
  }
  assert(false && "unknown formula kind");
  return Tri::Unknown;
}

bool Formula::evalPoint(const std::vector<int64_t> &Assignment) const {
  switch (Kind) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom: {
    int64_t A = Lhs->evalPoint(Assignment);
    int64_t B = Rhs->evalPoint(Assignment);
    switch (Op) {
    case CmpOp::Le:
      return A <= B;
    case CmpOp::Ge:
      return A >= B;
    case CmpOp::Eq:
      return A == B;
    case CmpOp::Ne:
      return A != B;
    }
    return false;
  }
  case FormulaKind::And:
    for (const FormulaPtr &P : Parts)
      if (!P->evalPoint(Assignment))
        return false;
    return true;
  case FormulaKind::Or:
    for (const FormulaPtr &P : Parts)
      if (P->evalPoint(Assignment))
        return true;
    return false;
  }
  assert(false && "unknown formula kind");
  return false;
}

void Formula::collectVars(std::vector<VarId> &Out) const {
  switch (Kind) {
  case FormulaKind::True:
  case FormulaKind::False:
    return;
  case FormulaKind::Atom:
    Lhs->collectVars(Out);
    Rhs->collectVars(Out);
    return;
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const FormulaPtr &P : Parts)
      P->collectVars(Out);
    return;
  }
}

std::vector<VarId> Formula::vars() const {
  std::vector<VarId> Out;
  collectVars(Out);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::string Formula::str() const {
  switch (Kind) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Atom: {
    const char *OpStr = "?";
    switch (Op) {
    case CmpOp::Le:
      OpStr = "<=";
      break;
    case CmpOp::Ge:
      OpStr = ">=";
      break;
    case CmpOp::Eq:
      OpStr = "=";
      break;
    case CmpOp::Ne:
      OpStr = "!=";
      break;
    }
    return Lhs->str() + " " + OpStr + " " + Rhs->str();
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::string Sep = Kind == FormulaKind::And ? " & " : " | ";
    std::string Out = "(";
    for (size_t I = 0; I < Parts.size(); ++I) {
      if (I)
        Out += Sep;
      Out += Parts[I]->str();
    }
    return Out + ")";
  }
  }
  return "?";
}
