//===- smt/Solver.h - Bounded-domain constraint solver ----------*- C++ -*-===//
//
// Part of the Regel reproduction; this is the Z3 substitute used by
// InferConstants (Sec. 4.2). Variables have finite non-negative domains
// (symbolic integers live in [1, MAX]); solving is depth-first search with
// interval-based three-valued pruning at every node, ascending value order
// (so the first model uses the smallest constants — matching Regel's
// preference for small regexes), and blocking clauses for model
// enumeration.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SMT_SOLVER_H
#define REGEL_SMT_SOLVER_H

#include "smt/Formula.h"

#include <optional>
#include <vector>

namespace regel::smt {

/// A full assignment of the declared variables.
using Model = std::vector<int64_t>;

enum class SolveStatus : uint8_t { Sat, Unsat, ResourceOut };

/// Result of a solve call; Model is populated iff Status == Sat.
struct SolveResult {
  SolveStatus Status;
  Model Assignment;

  bool isSat() const { return Status == SolveStatus::Sat; }
};

/// Cross-run verdict store consulted by Solver::solve — the SMT
/// memoization seam, implemented by the engine's ShardedSmtCache the way
/// DfaStore is implemented by its ShardedDfaStore. A key is the canonical
/// (hash-consed, sorted, de-duplicated) conjunction of the solver's
/// constraints plus the full declared-domain vector; the verdict for a
/// key never changes, and a Sat entry's model is the exact model the
/// solver's deterministic ascending-order DFS would produce. lookup may
/// also answer Unsat for a query whose conjunct set is a superset of a
/// cached Unsat formula over identical domains (adding conjuncts only
/// removes models). ResourceOut is never stored — it depends on the
/// caller's node budget, not on the formula.
class VerdictStore {
public:
  virtual ~VerdictStore() = default;

  /// Returns true and fills \p Out when a verdict for (F, Domains) is
  /// known, exactly or by Unsat implication.
  virtual bool lookup(const FormulaPtr &F,
                      const std::vector<Interval> &Domains,
                      SolveResult &Out) = 0;

  /// Records a Sat/Unsat verdict (implementations drop ResourceOut and
  /// may drop anything else — the store is bounded and advisory).
  virtual void publish(const FormulaPtr &F,
                       const std::vector<Interval> &Domains,
                       const SolveResult &R) = 0;
};

/// Bounded-domain solver with DFS + interval pruning.
class Solver {
public:
  /// Declares a variable with inclusive domain [Lo, Hi]; returns its id.
  VarId declareVar(int64_t Lo, int64_t Hi);

  /// Conjoins \p F onto the constraint store.
  void addConstraint(FormulaPtr F);

  /// Adds a blocking clause excluding value \p V for variable \p Var
  /// (the paper's "kappa != sigma[kappa]" strengthening, Fig. 14 line 8).
  void blockValue(VarId Var, int64_t V);

  /// Opens a backtracking frame: constraints added after push() are
  /// retracted by the matching pop(). Variables are session-scoped, not
  /// frame-scoped — declare them before the first push. This is what
  /// lets one session check many examples against a shared constraint
  /// prefix (declare once, push/pop per example).
  void push();
  void pop();

  /// Attaches a cross-run verdict store (nullptr detaches). Borrowed,
  /// thread-safe, must outlive the solver's solve calls.
  void setStore(VerdictStore *S) { Store = S; }

  /// Searches for a model. \p NodeBudget bounds the number of DFS nodes
  /// (0 = unlimited); exceeding it yields ResourceOut. With a store
  /// attached, the canonical query is looked up first (a hit skips the
  /// search entirely) and a completed verdict is published back.
  SolveResult solve(uint64_t NodeBudget = 0);

  /// Number of DFS nodes visited by the last solve call.
  uint64_t lastSearchNodes() const { return SearchNodes; }

  /// DFS searches actually executed across this solver's lifetime (store
  /// hits do not run one) — the honest "smt_solves" figure.
  uint64_t solves() const { return Solves; }

  /// solve() calls answered by the attached verdict store.
  uint64_t storeHits() const { return StoreHits; }

  unsigned numVars() const { return static_cast<unsigned>(Domains.size()); }

private:
  bool dfs(std::vector<Interval> &Domains, unsigned Depth, Model &Out,
           uint64_t NodeBudget, bool &OutOfBudget);

  std::vector<Interval> Domains;
  std::vector<FormulaPtr> Constraints;
  std::vector<size_t> Frames; ///< constraint count at each push()
  VerdictStore *Store = nullptr;
  uint64_t SearchNodes = 0;
  uint64_t Solves = 0;
  uint64_t StoreHits = 0;
};

} // namespace regel::smt

#endif // REGEL_SMT_SOLVER_H
