//===- smt/Solver.h - Bounded-domain constraint solver ----------*- C++ -*-===//
//
// Part of the Regel reproduction; this is the Z3 substitute used by
// InferConstants (Sec. 4.2). Variables have finite non-negative domains
// (symbolic integers live in [1, MAX]); solving is depth-first search with
// interval-based three-valued pruning at every node, ascending value order
// (so the first model uses the smallest constants — matching Regel's
// preference for small regexes), and blocking clauses for model
// enumeration.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SMT_SOLVER_H
#define REGEL_SMT_SOLVER_H

#include "smt/Formula.h"

#include <optional>
#include <vector>

namespace regel::smt {

/// A full assignment of the declared variables.
using Model = std::vector<int64_t>;

enum class SolveStatus : uint8_t { Sat, Unsat, ResourceOut };

/// Result of a solve call; Model is populated iff Status == Sat.
struct SolveResult {
  SolveStatus Status;
  Model Assignment;

  bool isSat() const { return Status == SolveStatus::Sat; }
};

/// Bounded-domain solver with DFS + interval pruning.
class Solver {
public:
  /// Declares a variable with inclusive domain [Lo, Hi]; returns its id.
  VarId declareVar(int64_t Lo, int64_t Hi);

  /// Conjoins \p F onto the constraint store.
  void addConstraint(FormulaPtr F);

  /// Adds a blocking clause excluding value \p V for variable \p Var
  /// (the paper's "kappa != sigma[kappa]" strengthening, Fig. 14 line 8).
  void blockValue(VarId Var, int64_t V);

  /// Searches for a model. \p NodeBudget bounds the number of DFS nodes
  /// (0 = unlimited); exceeding it yields ResourceOut.
  SolveResult solve(uint64_t NodeBudget = 0);

  /// Number of DFS nodes visited by the last solve call.
  uint64_t lastSearchNodes() const { return SearchNodes; }

  unsigned numVars() const { return static_cast<unsigned>(Domains.size()); }

private:
  bool dfs(std::vector<Interval> &Domains, unsigned Depth, Model &Out,
           uint64_t NodeBudget, bool &OutOfBudget);

  std::vector<Interval> Domains;
  std::vector<FormulaPtr> Constraints;
  uint64_t SearchNodes = 0;
};

} // namespace regel::smt

#endif // REGEL_SMT_SOLVER_H
