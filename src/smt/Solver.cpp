//===- smt/Solver.cpp -----------------------------------------------------===//

#include "smt/Solver.h"

#include <cassert>

using namespace regel::smt;

VarId Solver::declareVar(int64_t Lo, int64_t Hi) {
  assert(Lo >= 0 && Lo <= Hi && Hi < Infinity && "finite domain required");
  Domains.push_back({Lo, Hi});
  return static_cast<VarId>(Domains.size() - 1);
}

void Solver::addConstraint(FormulaPtr F) {
  assert(F && "null constraint");
  Constraints.push_back(std::move(F));
}

void Solver::blockValue(VarId Var, int64_t V) {
  addConstraint(Formula::ne(Term::var(Var), Term::constant(V)));
}

void Solver::push() { Frames.push_back(Constraints.size()); }

void Solver::pop() {
  assert(!Frames.empty() && "pop without matching push");
  Constraints.resize(Frames.back());
  Frames.pop_back();
}

SolveResult Solver::solve(uint64_t NodeBudget) {
  SearchNodes = 0;
  // The canonical query (sorted, de-duplicated conjunction of hash-consed
  // constraints) is the cache key: insertion order and duplicate blocking
  // clauses do not fragment the store.
  FormulaPtr Query;
  if (Store) {
    Query = Formula::conj(Constraints);
    SolveResult Cached;
    if (Store->lookup(Query, Domains, Cached)) {
      ++StoreHits;
      return Cached;
    }
  }
  ++Solves;
  std::vector<Interval> Work = Domains;
  Model Out(Domains.size(), 0);
  bool OutOfBudget = false;
  SolveResult R;
  if (dfs(Work, 0, Out, NodeBudget, OutOfBudget))
    R = {SolveStatus::Sat, std::move(Out)};
  else
    R = {OutOfBudget ? SolveStatus::ResourceOut : SolveStatus::Unsat, {}};
  // A budget-truncated search says nothing about the formula; only
  // completed verdicts are shared.
  if (Store && R.Status != SolveStatus::ResourceOut)
    Store->publish(Query, Domains, R);
  return R;
}

bool Solver::dfs(std::vector<Interval> &Work, unsigned Depth, Model &Out,
                 uint64_t NodeBudget, bool &OutOfBudget) {
  ++SearchNodes;
  if (NodeBudget && SearchNodes > NodeBudget) {
    OutOfBudget = true;
    return false;
  }

  // Three-valued pruning: if any constraint is definitely violated, stop;
  // if every constraint is definitely satisfied, any completion works.
  bool AllTrue = true;
  for (const FormulaPtr &C : Constraints) {
    Tri T = C->eval(Work);
    if (T == Tri::False)
      return false;
    if (T == Tri::Unknown)
      AllTrue = false;
  }
  if (AllTrue) {
    for (size_t I = 0; I < Work.size(); ++I)
      Out[I] = Work[I].Lo;
    return true;
  }

  // Branch on the first unassigned variable (declaration order keeps the
  // symbolic integers of the regex in left-to-right order; ascending values
  // find the smallest constants first).
  unsigned BranchVar = UINT32_MAX;
  for (size_t I = 0; I < Work.size(); ++I) {
    if (!Work[I].isPoint()) {
      BranchVar = static_cast<unsigned>(I);
      break;
    }
  }
  if (BranchVar == UINT32_MAX) {
    // Fully assigned but some constraint still Unknown — cannot happen with
    // exact point intervals, but guard against it.
    for (size_t I = 0; I < Work.size(); ++I)
      Out[I] = Work[I].Lo;
    for (const FormulaPtr &C : Constraints)
      if (!C->evalPoint(Out))
        return false;
    return true;
  }

  Interval Saved = Work[BranchVar];
  for (int64_t V = Saved.Lo; V <= Saved.Hi; ++V) {
    Work[BranchVar] = {V, V};
    if (dfs(Work, Depth + 1, Out, NodeBudget, OutOfBudget))
      return true;
    if (OutOfBudget)
      break;
  }
  Work[BranchVar] = Saved;
  return false;
}
