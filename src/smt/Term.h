//===- smt/Term.h - Arithmetic terms over bounded integers ------*- C++ -*-===//
//
// Part of the Regel reproduction. Non-negative integer terms with addition
// and multiplication (the non-linear `x >= x1*k` constraints of Fig. 13
// need products of a variable with a term). Infinity is a first-class
// constant because the DSL's unbounded repetitions yield upper bounds of
// "no bound". This module substitutes for the term layer of Z3.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SMT_TERM_H
#define REGEL_SMT_TERM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace regel::smt {

/// Variable identifier (dense index issued by the Solver/encoder).
using VarId = uint32_t;

/// Saturating extended naturals: values in [0, Infinity].
constexpr int64_t Infinity = INT64_MAX;

/// Saturating addition on extended naturals.
int64_t satAdd(int64_t A, int64_t B);

/// Saturating multiplication on extended naturals.
int64_t satMul(int64_t A, int64_t B);

/// An inclusive interval over extended naturals.
struct Interval {
  int64_t Lo = 0;
  int64_t Hi = Infinity;

  bool isPoint() const { return Lo == Hi; }
  bool contains(int64_t V) const { return V >= Lo && V <= Hi; }
};

enum class TermKind : uint8_t { Const, Var, Add, Mul, Min, Max };

class Term;
using TermPtr = std::shared_ptr<const Term>;

/// An immutable arithmetic term.
class Term {
public:
  TermKind getKind() const { return Kind; }

  int64_t getValue() const { return Value; } ///< Const only.
  VarId getVar() const { return Var; }       ///< Var only.

  const TermPtr &getLhs() const { return Lhs; }
  const TermPtr &getRhs() const { return Rhs; }

  static TermPtr constant(int64_t V);
  static TermPtr infinity() { return constant(Infinity); }
  static TermPtr var(VarId V);
  static TermPtr add(TermPtr A, TermPtr B);
  static TermPtr mul(TermPtr A, TermPtr B);
  static TermPtr min(TermPtr A, TermPtr B);
  static TermPtr max(TermPtr A, TermPtr B);

  /// Interval evaluation under per-variable domains. All variables are
  /// non-negative, so +/* are monotone and interval arithmetic is exact on
  /// the endpoints.
  Interval eval(const std::vector<Interval> &Domains) const;

  /// Exact evaluation under a full assignment.
  int64_t evalPoint(const std::vector<int64_t> &Assignment) const;

  /// Collects the variables occurring in the term into \p Out (may repeat).
  void collectVars(std::vector<VarId> &Out) const;

  /// Printable form, e.g. "(k0 + 2*k1)".
  std::string str() const;

private:
  Term(TermKind Kind, int64_t Value, VarId Var, TermPtr Lhs, TermPtr Rhs)
      : Kind(Kind), Value(Value), Var(Var), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  TermKind Kind;
  int64_t Value;
  VarId Var;
  TermPtr Lhs, Rhs;
};

} // namespace regel::smt

#endif // REGEL_SMT_TERM_H
