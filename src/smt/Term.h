//===- smt/Term.h - Arithmetic terms over bounded integers ------*- C++ -*-===//
//
// Part of the Regel reproduction. Non-negative integer terms with addition
// and multiplication (the non-linear `x >= x1*k` constraints of Fig. 13
// need products of a variable with a term). Infinity is a first-class
// constant because the DSL's unbounded repetitions yield upper bounds of
// "no bound". This module substitutes for the term layer of Z3.
//
// Terms are hash-consed: the factory functions intern every node in a
// process-global table (after constant folding and after sorting the
// operands of the commutative constructors into a deterministic canonical
// order), so structurally equal terms are pointer-equal. That is what
// makes formulas usable as cache keys — equality is a pointer compare and
// hash() is a stored field, both O(1).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SMT_TERM_H
#define REGEL_SMT_TERM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace regel::smt {

/// Variable identifier (dense index issued by the Solver/encoder).
using VarId = uint32_t;

/// Saturating extended naturals: values in [0, Infinity].
constexpr int64_t Infinity = INT64_MAX;

/// Saturating addition on extended naturals.
int64_t satAdd(int64_t A, int64_t B);

/// Saturating multiplication on extended naturals.
int64_t satMul(int64_t A, int64_t B);

/// An inclusive interval over extended naturals.
struct Interval {
  int64_t Lo = 0;
  int64_t Hi = Infinity;

  bool isPoint() const { return Lo == Hi; }
  bool contains(int64_t V) const { return V >= Lo && V <= Hi; }

  friend bool operator==(const Interval &A, const Interval &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Interval &A, const Interval &B) {
    return !(A == B);
  }
};

/// splitmix64 finalizer: full-avalanche mix for the structural hashes of
/// terms and formulas (and the shard selection of the caches keyed on
/// them).
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Order-sensitive hash combination (applied after canonical operand
/// ordering, so equal operand multisets still hash equally).
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  return hashMix(Seed ^ (V + 0x9e3779b97f4a7c15ull + (Seed << 6) +
                         (Seed >> 2)));
}

enum class TermKind : uint8_t { Const, Var, Add, Mul, Min, Max };

class Term;
using TermPtr = std::shared_ptr<const Term>;

/// An immutable arithmetic term.
class Term {
public:
  TermKind getKind() const { return Kind; }

  int64_t getValue() const { return Value; } ///< Const only.
  VarId getVar() const { return Var; }       ///< Var only.

  const TermPtr &getLhs() const { return Lhs; }
  const TermPtr &getRhs() const { return Rhs; }

  static TermPtr constant(int64_t V);
  static TermPtr infinity() { return constant(Infinity); }
  static TermPtr var(VarId V);
  static TermPtr add(TermPtr A, TermPtr B);
  static TermPtr mul(TermPtr A, TermPtr B);
  static TermPtr min(TermPtr A, TermPtr B);
  static TermPtr max(TermPtr A, TermPtr B);

  /// Structural hash, stored at interning time. Combined with interning
  /// (structural equality == pointer equality) this is all a hash map
  /// keyed on terms needs.
  size_t hash() const { return static_cast<size_t>(Hash); }

  /// Deterministic structural total order — constants before variables
  /// before composites, then by content — used to canonicalize the
  /// operand order of the commutative constructors. Returns <0, 0, >0;
  /// 0 iff &A == &B (interning makes structural equality pointer
  /// equality).
  static int compare(const Term &A, const Term &B);

  /// Interval evaluation under per-variable domains. All variables are
  /// non-negative, so +/* are monotone and interval arithmetic is exact on
  /// the endpoints.
  Interval eval(const std::vector<Interval> &Domains) const;

  /// Exact evaluation under a full assignment.
  int64_t evalPoint(const std::vector<int64_t> &Assignment) const;

  /// Collects the variables occurring in the term into \p Out (may repeat).
  void collectVars(std::vector<VarId> &Out) const;

  /// Printable form, e.g. "(k0 + 2*k1)".
  std::string str() const;

private:
  Term(TermKind Kind, int64_t Value, VarId Var, TermPtr Lhs, TermPtr Rhs,
       uint64_t Hash)
      : Kind(Kind), Value(Value), Var(Var), Hash(Hash), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  /// Finds or creates the interned node for the (already folded and
  /// canonically ordered) shape.
  static TermPtr intern(TermKind Kind, int64_t Value, VarId Var, TermPtr Lhs,
                        TermPtr Rhs);

  TermKind Kind;
  int64_t Value;
  VarId Var;
  uint64_t Hash;
  TermPtr Lhs, Rhs;
};

} // namespace regel::smt

#endif // REGEL_SMT_TERM_H
