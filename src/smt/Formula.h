//===- smt/Formula.h - Quantifier-free formulas over terms ------*- C++ -*-===//
//
// Part of the Regel reproduction. Boolean combinations of comparison atoms
// over smt terms, with three-valued interval evaluation (the Solver's
// pruning oracle). Substitutes for the formula layer of Z3.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SMT_FORMULA_H
#define REGEL_SMT_FORMULA_H

#include "smt/Term.h"

#include <memory>
#include <string>
#include <vector>

namespace regel::smt {

enum class CmpOp : uint8_t { Le, Ge, Eq, Ne };

enum class FormulaKind : uint8_t { True, False, Atom, And, Or };

/// Three-valued logic result of interval evaluation.
enum class Tri : uint8_t { False, True, Unknown };

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// An immutable quantifier-free formula.
class Formula {
public:
  FormulaKind getKind() const { return Kind; }
  CmpOp getOp() const { return Op; }
  const TermPtr &getLhs() const { return Lhs; }
  const TermPtr &getRhs() const { return Rhs; }
  const std::vector<FormulaPtr> &getParts() const { return Parts; }

  static FormulaPtr truth();
  static FormulaPtr falsity();
  static FormulaPtr atom(CmpOp Op, TermPtr Lhs, TermPtr Rhs);
  static FormulaPtr conj(std::vector<FormulaPtr> Parts);
  static FormulaPtr disj(std::vector<FormulaPtr> Parts);

  /// Convenience comparisons.
  static FormulaPtr le(TermPtr A, TermPtr B) {
    return atom(CmpOp::Le, std::move(A), std::move(B));
  }
  static FormulaPtr ge(TermPtr A, TermPtr B) {
    return atom(CmpOp::Ge, std::move(A), std::move(B));
  }
  static FormulaPtr eq(TermPtr A, TermPtr B) {
    return atom(CmpOp::Eq, std::move(A), std::move(B));
  }
  static FormulaPtr ne(TermPtr A, TermPtr B) {
    return atom(CmpOp::Ne, std::move(A), std::move(B));
  }

  /// Three-valued evaluation under interval domains: returns True (resp.
  /// False) only when every (resp. no) completion satisfies the formula.
  Tri eval(const std::vector<Interval> &Domains) const;

  /// Exact evaluation under a full assignment.
  bool evalPoint(const std::vector<int64_t> &Assignment) const;

  /// Variables occurring in the formula (sorted, unique).
  std::vector<VarId> vars() const;

  /// Printable form for diagnostics and tests.
  std::string str() const;

private:
  Formula(FormulaKind Kind, CmpOp Op, TermPtr Lhs, TermPtr Rhs,
          std::vector<FormulaPtr> Parts)
      : Kind(Kind), Op(Op), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)),
        Parts(std::move(Parts)) {}

  FormulaKind Kind;
  CmpOp Op = CmpOp::Le;
  TermPtr Lhs, Rhs;
  std::vector<FormulaPtr> Parts;

  void collectVars(std::vector<VarId> &Out) const;
};

} // namespace regel::smt

#endif // REGEL_SMT_FORMULA_H
