//===- smt/Formula.h - Quantifier-free formulas over terms ------*- C++ -*-===//
//
// Part of the Regel reproduction. Boolean combinations of comparison atoms
// over smt terms, with three-valued interval evaluation (the Solver's
// pruning oracle). Substitutes for the formula layer of Z3.
//
// Like terms, formulas are hash-consed into canonical form: conj/disj
// flatten nested conjunctions/disjunctions, drop units, sort the parts
// into the deterministic structural order of Formula::compare, and
// de-duplicate — so the same SET of constraints builds the same pointer
// regardless of insertion order. Structural equality is pointer equality
// and hash() is O(1), which is what lets the engine key a cross-run
// verdict cache on formulas, and what makes the conjunct-subset test
// behind the cache's Unsat implication short-circuit a linear merge.
// Atoms are interned as constructed: Le/Ge keep their operand direction
// (every atom in the system is built by one encoder, so mirrored
// spellings of one comparison do not occur in practice).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SMT_FORMULA_H
#define REGEL_SMT_FORMULA_H

#include "smt/Term.h"

#include <memory>
#include <string>
#include <vector>

namespace regel::smt {

enum class CmpOp : uint8_t { Le, Ge, Eq, Ne };

enum class FormulaKind : uint8_t { True, False, Atom, And, Or };

/// Three-valued logic result of interval evaluation.
enum class Tri : uint8_t { False, True, Unknown };

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// An immutable quantifier-free formula.
class Formula {
public:
  FormulaKind getKind() const { return Kind; }
  CmpOp getOp() const { return Op; }
  const TermPtr &getLhs() const { return Lhs; }
  const TermPtr &getRhs() const { return Rhs; }
  const std::vector<FormulaPtr> &getParts() const { return Parts; }

  static FormulaPtr truth();
  static FormulaPtr falsity();
  static FormulaPtr atom(CmpOp Op, TermPtr Lhs, TermPtr Rhs);
  static FormulaPtr conj(std::vector<FormulaPtr> Parts);
  static FormulaPtr disj(std::vector<FormulaPtr> Parts);

  /// Convenience comparisons.
  static FormulaPtr le(TermPtr A, TermPtr B) {
    return atom(CmpOp::Le, std::move(A), std::move(B));
  }
  static FormulaPtr ge(TermPtr A, TermPtr B) {
    return atom(CmpOp::Ge, std::move(A), std::move(B));
  }
  static FormulaPtr eq(TermPtr A, TermPtr B) {
    return atom(CmpOp::Eq, std::move(A), std::move(B));
  }
  static FormulaPtr ne(TermPtr A, TermPtr B) {
    return atom(CmpOp::Ne, std::move(A), std::move(B));
  }

  /// Structural hash, stored at interning time (O(1), cache-key grade:
  /// interning makes structurally equal formulas pointer-equal).
  size_t hash() const { return static_cast<size_t>(Hash); }

  /// Deterministic structural total order (by kind, then contents; And/Or
  /// parts lexicographically). Returns 0 iff &A == &B. The canonical sort
  /// order of conj/disj parts.
  static int compare(const Formula &A, const Formula &B);

  /// Three-valued evaluation under interval domains: returns True (resp.
  /// False) only when every (resp. no) completion satisfies the formula.
  Tri eval(const std::vector<Interval> &Domains) const;

  /// Exact evaluation under a full assignment.
  bool evalPoint(const std::vector<int64_t> &Assignment) const;

  /// Variables occurring in the formula (sorted, unique).
  std::vector<VarId> vars() const;

  /// Printable form for diagnostics and tests.
  std::string str() const;

private:
  Formula(FormulaKind Kind, CmpOp Op, TermPtr Lhs, TermPtr Rhs,
          std::vector<FormulaPtr> Parts, uint64_t Hash)
      : Kind(Kind), Op(Op), Hash(Hash), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)), Parts(std::move(Parts)) {}

  /// Finds or creates the interned node for the (already canonicalized)
  /// shape.
  static FormulaPtr intern(FormulaKind Kind, CmpOp Op, TermPtr Lhs,
                           TermPtr Rhs, std::vector<FormulaPtr> Parts);

  FormulaKind Kind;
  CmpOp Op = CmpOp::Le;
  uint64_t Hash = 0;
  TermPtr Lhs, Rhs;
  std::vector<FormulaPtr> Parts;

  void collectVars(std::vector<VarId> &Out) const;
};

/// True when every conjunct of \p Sub is a conjunct of \p Sup (treating a
/// non-And formula as the singleton set of itself, truth as the empty
/// set). Over identical domains, Sup unsatisfiable follows from Sub
/// unsatisfiable — the cache's implication short-circuit. Linear merge
/// over the canonical (sorted) part order.
bool conjSubset(const FormulaPtr &Sub, const FormulaPtr &Sup);

} // namespace regel::smt

#endif // REGEL_SMT_FORMULA_H
