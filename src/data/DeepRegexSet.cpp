//===- data/DeepRegexSet.cpp ----------------------------------------------===//

#include "data/DeepRegexSet.h"

#include "data/ExampleGen.h"
#include "support/Random.h"

#include <cstring>
#include <unordered_set>

using namespace regel;
using namespace regel::data;

namespace {

/// A unit: a small regex plus its English rendering (singular/plural as
/// needed is baked into the text).
struct Unit {
  RegexPtr R;
  std::string Text;
};

struct Vocab {
  CharClass Class;
  const char *Singular;
  const char *Plural;
};

const Vocab ClassVocab[] = {
    {CharClass::num(), "digit", "digits"},
    {CharClass::let(), "letter", "letters"},
    {CharClass::cap(), "capital letter", "capital letters"},
    {CharClass::low(), "lower case letter", "lower case letters"},
    {CharClass::vow(), "vowel", "vowels"},
    {CharClass::alphaNum(), "alphanumeric character", "alphanumeric characters"},
    {CharClass::hex(), "hex digit", "hex digits"},
};

struct ConstVocab {
  char C;
  const char *Name;
  const char *PluralName;
};

const ConstVocab ConstsVocab[] = {
    {',', "comma", "commas"},       {'-', "dash", "dashes"},
    {'.', "dot", "dots"},           {'_', "underscore", "underscores"},
    {':', "colon", "colons"},       {'+', "plus sign", "plus signs"},
    {'/', "slash", "slashes"},      {';', "semicolon", "semicolons"},
};

/// Samples a repetition unit over one character class.
Unit sampleUnit(Rng &R) {
  const Vocab &V =
      ClassVocab[R.nextBelow(std::size(ClassVocab))];
  RegexPtr C = Regex::charClass(V.Class);
  switch (R.nextBelow(6)) {
  case 0: { // exactly one
    return {C, std::string("a ") + V.Singular};
  }
  case 1: { // exactly k
    int K = static_cast<int>(R.nextInRange(2, 6));
    return {Regex::repeat(C, K), std::to_string(K) + " " + V.Plural};
  }
  case 2: { // k or more
    int K = static_cast<int>(R.nextInRange(1, 4));
    const char *Form = R.chance(1, 2) ? " or more " : " or more ";
    return {Regex::repeatAtLeast(C, K),
            std::to_string(K) + Form + V.Plural};
  }
  case 3: { // at least k
    int K = static_cast<int>(R.nextInRange(1, 4));
    return {Regex::repeatAtLeast(C, K),
            std::string("at least ") + std::to_string(K) + " " + V.Plural};
  }
  case 4: { // up to k
    int K = static_cast<int>(R.nextInRange(2, 6));
    const char *Form = R.chance(1, 2) ? "up to " : "at most ";
    return {Regex::repeatRange(C, 1, K),
            Form + std::to_string(K) + " " + V.Plural};
  }
  default: { // k1 to k2
    int K1 = static_cast<int>(R.nextInRange(1, 4));
    int K2 = K1 + static_cast<int>(R.nextInRange(1, 4));
    return {Regex::repeatRange(C, K1, K2),
            std::to_string(K1) + " to " + std::to_string(K2) + " " + V.Plural};
  }
  }
}

Unit sampleConst(Rng &R) {
  const ConstVocab &V = ConstsVocab[R.nextBelow(std::size(ConstsVocab))];
  return {Regex::literal(V.C), std::string("a ") + V.Name};
}

const char *concatWord(Rng &R) {
  switch (R.nextBelow(3)) {
  case 0:
    return " followed by ";
  case 1:
    return " then ";
  default:
    return " before ";
  }
}

/// One full (regex, English) sample.
struct Sample {
  RegexPtr R;
  std::string Text;
};

/// Crowd-worker paraphrase noise (the original set was paraphrased by
/// Mechanical Turkers, which is what keeps the NL-only baseline's accuracy
/// moderate, Sec. 7). About half the descriptions get perturbed: some
/// perturbations are harmless filler, others garble an operator word in a
/// way that examples can disambiguate but pure translation cannot.
std::string paraphrase(std::string Text, Rng &R) {
  if (!R.chance(60, 100))
    return Text;
  auto ReplaceFirst = [&](const char *From, const char *To) {
    size_t At = Text.find(From);
    if (At == std::string::npos)
      return false;
    Text = Text.substr(0, At) + To + Text.substr(At + std::strlen(From));
    return true;
  };
  // Prefer a marker-garbling rewrite; different workers garble different
  // things, so rotate the starting point.
  uint64_t Start = R.nextBelow(4);
  for (uint64_t I = 0; I < 4; ++I) {
    switch ((Start + I) % 4) {
    case 0: // conjunction instead of sequencing ("and" reads as a set)
      if (ReplaceFirst(" followed by ", " and "))
        return Text;
      break;
    case 1: // vague positional wording replaces the marker
      if (ReplaceFirst("strings that start with ", "put at the front "))
        return Text;
      if (ReplaceFirst("lines starting with ", "put at the front "))
        return Text;
      break;
    case 2: // sloppy arithmetic wording
      if (ReplaceFirst(" or more ", " plus "))
        return Text;
      break;
    case 3: // sequencing word dropped entirely
      if (ReplaceFirst(" then ", " "))
        return Text;
      break;
    }
  }
  // Nothing applicable: harmless filler (skipping absorbs it).
  return R.chance(1, 2)
             ? "i need a regular expression that matches " + Text
             : Text + ", can anyone help me with this";
}

Sample sampleBenchmark(Rng &R) {
  switch (R.nextBelow(10)) {
  case 0: { // unit alone
    Unit U = sampleUnit(R);
    return {U.R, U.Text};
  }
  case 1: { // concat of two units
    Unit A = sampleUnit(R), B = R.chance(1, 3) ? sampleConst(R) : sampleUnit(R);
    const char *W = concatWord(R);
    if (std::string(W) == " before ")
      return {Regex::concat(A.R, B.R), B.Text + " after " + A.Text};
    return {Regex::concat(A.R, B.R), A.Text + W + B.Text};
  }
  case 2: { // concat of three units
    Unit A = sampleUnit(R), B = sampleConst(R), C = sampleUnit(R);
    return {Regex::concat(A.R, Regex::concat(B.R, C.R)),
            A.Text + concatWord(R) + B.Text + concatWord(R) + C.Text};
  }
  case 3: { // disjunction
    Unit A = sampleUnit(R), B = sampleUnit(R);
    const char *Lead = R.chance(1, 2) ? "either " : "";
    return {Regex::orOf(A.R, B.R), Lead + A.Text + " or " + B.Text};
  }
  case 4: { // starts with
    Unit A = sampleUnit(R);
    const char *Lead = R.chance(1, 2) ? "strings that start with "
                                      : "lines starting with ";
    return {Regex::startsWith(A.R), Lead + A.Text};
  }
  case 5: { // ends with
    Unit A = sampleUnit(R);
    const char *Lead = R.chance(1, 2) ? "strings that end with "
                                      : "lines ending with ";
    return {Regex::endsWith(A.R), Lead + A.Text};
  }
  case 6: { // contains
    Unit A = sampleUnit(R);
    const char *Lead = R.chance(1, 2) ? "strings containing "
                                      : "lines that contain ";
    return {Regex::contains(A.R), Lead + A.Text};
  }
  case 7: { // separated by
    Unit A = sampleUnit(R);
    const ConstVocab &V = ConstsVocab[R.nextBelow(std::size(ConstsVocab))];
    RegexPtr Sep =
        Regex::concat(A.R, Regex::kleeneStar(
                               Regex::concat(Regex::literal(V.C), A.R)));
    return {Sep, A.Text + " separated by " + V.PluralName};
  }
  case 8: { // start-and-end conjunction
    Unit A = sampleUnit(R), B = sampleUnit(R);
    return {Regex::andOf(Regex::startsWith(A.R), Regex::endsWith(B.R)),
            std::string("strings that start with ") + A.Text +
                " and end with " + B.Text};
  }
  default: { // optional tail
    Unit A = sampleUnit(R), B = sampleConst(R);
    return {Regex::concat(A.R, Regex::optional(B.R)),
            A.Text + " then optionally " + B.Text};
  }
  }
}

} // namespace

SketchPtr regel::data::rootHoleSketch(const RegexPtr &GroundTruth) {
  // Sec. 7: "we replace the root operator op in r with a hole whose
  // components are op's arguments".
  if (!isOperatorKind(GroundTruth->getKind()))
    return Sketch::hole({Sketch::concrete(GroundTruth)});
  std::vector<SketchPtr> Components;
  for (const RegexPtr &C : GroundTruth->children())
    Components.push_back(Sketch::concrete(C));
  return Sketch::hole(std::move(Components));
}

std::vector<Benchmark> regel::data::deepRegexSet(unsigned Count,
                                                 uint64_t Seed) {
  std::vector<Benchmark> Out;
  Rng R(Seed);
  std::unordered_set<size_t> SeenRegex;
  unsigned Attempts = 0;
  while (Out.size() < Count && ++Attempts < Count * 50) {
    Sample S = sampleBenchmark(R);
    S.Text = paraphrase(std::move(S.Text), R);
    if (!SeenRegex.insert(S.R->hash()).second)
      continue; // regex duplicates make the accuracy metric ambiguous
    GeneratedExamples E = generateExamples(S.R, R);
    if (!E.Ok)
      continue;
    Benchmark B;
    B.Id = "dr-" + std::to_string(Out.size() + 1);
    B.Description = S.Text;
    B.Initial = std::move(E.Initial);
    B.ExtraPos = std::move(E.ExtraPos);
    B.ExtraNeg = std::move(E.ExtraNeg);
    B.GroundTruth = S.R;
    B.GoldSketch = rootHoleSketch(S.R);
    Out.push_back(std::move(B));
  }
  return Out;
}
