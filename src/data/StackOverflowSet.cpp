//===- data/StackOverflowSet.cpp ------------------------------------------===//

#include "data/StackOverflowSet.h"

#include "data/ExampleGen.h"
#include "regex/Parser.h"
#include "sketch/SketchParser.h"

#include <cassert>

using namespace regel;
using namespace regel::data;

namespace {

/// One curated entry: description, ground truth (DSL text) and the
/// manually written sketch label (Sec. 7, "we manually write sketch labels
/// in a way that mimics the structure of the English utterance").
struct Entry {
  const char *Id;
  const char *Desc;
  const char *Truth;
  const char *Sketch;
};

const Entry Entries[] = {
    {"so-01",
     "I need a regular expression that validates Decimal(18, 3), which means "
     "the max number of digits before comma is 15 then accept at max 3 "
     "numbers after the comma.",
     "Concat(RepeatRange(<num>,1,15),Optional(Concat(<.>,RepeatRange(<num>,1,"
     "3))))",
     "Concat(hole{<num>,<,>},hole{RepeatRange(<num>,1,3),<,>})"},
    {"so-02",
     "Trying to validate usernames for my site: they must start with a "
     "letter and then have 2 to 7 more letters or digits, nothing else is "
     "allowed.",
     "Concat(<let>,RepeatRange(Or(<let>,<num>),2,7))",
     "Concat(hole{<let>},hole{RepeatRange(Or(<let>,<num>),2,7)})"},
    {"so-03",
     "Phone extension format for our directory: exactly 3 digits then a "
     "dash then exactly 4 digits, nothing before or after.",
     "Concat(Repeat(<num>,3),Concat(<->,Repeat(<num>,4)))",
     "Concat(hole{Repeat(<num>,3)},hole{<->,Repeat(<num>,4)})"},
    {"so-04",
     "I want to match a clock style value, one or two digits then a colon "
     "followed by exactly 2 digits, can anyone help with the expression?",
     "Concat(RepeatRange(<num>,1,2),Concat(<:>,Repeat(<num>,2)))",
     "Concat(hole{RepeatRange(<num>,1,2)},hole{<:>,Repeat(<num>,2)})"},
    {"so-05",
     "Need to check color codes entered by users, a hash followed by "
     "exactly 6 hex digits, for example #a0b1c2 should pass.",
     "Concat(<#>,Repeat(<hex>,6))",
     "Concat(hole{<#>},hole{Repeat(<hex>,6)})"},
    {"so-06",
     "Our password field should accept at least 8 characters, any "
     "characters are fine, we only check the length on this form.",
     "RepeatAtLeast(<any>,8)", "hole{RepeatAtLeast(<any>,8)}"},
    {"so-07",
     "The code column holds only capital letters and there must be at "
     "least 2 of them, lowercase or digits should be rejected.",
     "RepeatAtLeast(<cap>,2)", "hole{RepeatAtLeast(<cap>,2),<let>}"},
    {"so-08",
     "Validating postal codes: exactly 5 digits optionally followed by a "
     "dash and 4 more digits, both 12345 and 12345-6789 are fine.",
     "Concat(Repeat(<num>,5),Optional(Concat(<->,Repeat(<num>,4))))",
     "Concat(hole{Repeat(<num>,5)},hole{Optional(Concat(<->,Repeat(<num>,4)))"
     "})"},
    {"so-09",
     "Employee badges look like 2 capital letters followed by 6 digits, I "
     "need a pattern that accepts those and nothing else.",
     "Concat(Repeat(<cap>,2),Repeat(<num>,6))",
     "Concat(hole{Repeat(<cap>,2)},hole{Repeat(<num>,6)})"},
    {"so-10",
     "I have a field with numbers separated by commas, like 1,22,333 - one "
     "or more digits in every part, no spaces anywhere.",
     "Concat(RepeatAtLeast(<num>,1),KleeneStar(Concat(<,>,RepeatAtLeast(<num>"
     ",1))))",
     "hole{Concat(RepeatAtLeast(<num>,1),KleeneStar(Concat(<,>,RepeatAtLeast("
     "<num>,1)))),<,>}"},
    {"so-11",
     "Version strings in our installer are digits separated by dots where "
     "every part has 1 or 2 digits, like 1.0 or 10.21.3.",
     "Concat(RepeatRange(<num>,1,2),KleeneStar(Concat(<.>,RepeatRange(<num>,"
     "1,2))))",
     "hole{Concat(RepeatRange(<num>,1,2),KleeneStar(Concat(<.>,RepeatRange(<"
     "num>,1,2)))),<.>}"},
    {"so-12",
     "How do I write an expression for strings that do not contain a space "
     "anywhere? Tabs are not an issue, just plain spaces.",
     "Not(Contains(<space>))", "hole{Not(Contains(<space>)),<space>}"},
    {"so-13",
     "Sentences in the import file must start with a capital letter and "
     "end with a period, everything in between is free form.",
     "And(StartsWith(<cap>),EndsWith(<.>))",
     "hole{StartsWith(<cap>),EndsWith(<.>)}"},
    {"so-14",
     "The input box should accept only if either first 2 letters alpha + 6 "
     "numeric or 8 numeric.",
     "Or(Concat(Repeat(<let>,2),Repeat(<num>,6)),Repeat(<num>,8))",
     "Or(hole{Repeat(<let>,2),Repeat(<num>,6)},hole{Repeat(<num>,8)})"},
    {"so-15",
     "Money amounts: one or more digits then optionally a dot and exactly "
     "2 digits for the cents, like 12 or 12.50.",
     "Concat(RepeatAtLeast(<num>,1),Optional(Concat(<.>,Repeat(<num>,2))))",
     "Concat(hole{RepeatAtLeast(<num>,1)},hole{Optional(Concat(<.>,Repeat(<"
     "num>,2)))})"},
    {"so-16",
     "Percent field: up to 3 digits followed by a percent sign, so 5%, 99% "
     "and 100% are all valid entries.",
     "Concat(RepeatRange(<num>,1,3),<%>)",
     "Concat(hole{RepeatRange(<num>,1,3)},hole{<%>})"},
    {"so-17",
     "File names in the upload are one or more letters then a dot then an "
     "extension of 2 or 3 letters, no other characters.",
     "Concat(RepeatAtLeast(<let>,1),Concat(<.>,RepeatRange(<let>,2,3)))",
     "Concat(hole{RepeatAtLeast(<let>,1)},hole{<.>,RepeatRange(<let>,2,3)})"},
    {"so-18",
     "Account identifiers are either 6 digits or 8 digits, 7 digits is not "
     "a thing in our system, how to express that?",
     "Or(Repeat(<num>,6),Repeat(<num>,8))",
     "Or(hole{Repeat(<num>,6)},hole{Repeat(<num>,8)})"},
    {"so-19",
     "Dates come in as 2 digits slash 2 digits slash 4 digits and I want "
     "to reject anything that does not match that shape.",
     "Concat(Repeat(<num>,2),Concat(</>,Concat(Repeat(<num>,2),Concat(</>,"
     "Repeat(<num>,4)))))",
     "Concat(hole{Repeat(<num>,2),</>},hole{Repeat(<num>,2),</>,Repeat(<num>"
     ",4)})"},
    {"so-20",
     "Integers with an optional plus sign in front, so +42 and 42 are both "
     "accepted, but the sign alone is not.",
     "Concat(Optional(<+>),RepeatAtLeast(<num>,1))",
     "Concat(hole{Optional(<+>)},hole{RepeatAtLeast(<num>,1)})"},
    {"so-21",
     "City names in this dataset are letters only, between 3 and 10 of "
     "them, punctuation or digits mean bad data.",
     "RepeatRange(<let>,3,10)", "hole{RepeatRange(<let>,3,10)}"},
    {"so-22",
     "Initials are written as a capital letter followed by a dot, repeated "
     "one or more times, such as J.R.R.",
     "RepeatAtLeast(Concat(<cap>,<.>),1)",
     "hole{RepeatAtLeast(Concat(<cap>,<.>),1),<.>}"},
    {"so-23",
     "Silly one: the field should contain vowels only, one or more, "
     "anything else should fail the check.",
     "RepeatAtLeast(<vow>,1)", "hole{RepeatAtLeast(<vow>,1)}"},
    {"so-24",
     "Names must not contain digits at all, any other characters are "
     "acceptable in this field, how do I say that?",
     "Not(Contains(<num>))", "hole{Not(Contains(<num>)),<num>}"},
    {"so-25",
     "Variable names here start with an underscore or a letter, the rest "
     "does not matter for this quick check.",
     "StartsWith(Or(<_>,<let>))", "hole{StartsWith(Or(<_>,<let>))}"},
    {"so-26",
     "Each statement line must end with a semicolon, I just need to verify "
     "the ending, the content before is anything.",
     "EndsWith(<;>)", "hole{EndsWith(<;>),<;>}"},
    {"so-27",
     "Password rule number one: the string has to contain at least one "
     "digit somewhere, that is the only requirement for now.",
     "Contains(<num>)", "hole{Contains(<num>),<num>}"},
    {"so-28",
     "Course codes are 2 letters then a dash then 2 digits, for example "
     "CS-10, case does not matter for the letters.",
     "Concat(Repeat(<let>,2),Concat(<->,Repeat(<num>,2)))",
     "Concat(hole{Repeat(<let>,2)},hole{<->,Repeat(<num>,2)})"},
    {"so-29",
     "License plates in this region are 3 capital letters followed by 3 or "
     "4 digits, like ABC123 or XYZ9876.",
     "Concat(Repeat(<cap>,3),RepeatRange(<num>,3,4))",
     "Concat(hole{Repeat(<cap>,3)},hole{RepeatRange(<num>,3,4)})"},
    {"so-30",
     "Keys are a single lower case letter followed by an underscore then "
     "one or more digits, e.g. a_12 or q_3.",
     "Concat(<low>,Concat(<_>,RepeatAtLeast(<num>,1)))",
     "Concat(hole{<low>},hole{<_>,RepeatAtLeast(<num>,1)})"},
    {"so-31",
     "Signed decimals: an optional dash, then one or more digits, then a "
     "dot, then one or more digits, like -3.14 or 2.5.",
     "Concat(Optional(<->),Concat(RepeatAtLeast(<num>,1),Concat(<.>,"
     "RepeatAtLeast(<num>,1))))",
     "Concat(hole{Optional(<->),<->},hole{RepeatAtLeast(<num>,1),<.>})"},
    {"so-32",
     "Identifiers are lower case words separated by underscores, such as "
     "foo_bar_baz, each word has one or more letters.",
     "Concat(RepeatAtLeast(<low>,1),KleeneStar(Concat(<_>,RepeatAtLeast(<low>"
     ",1))))",
     "hole{Concat(RepeatAtLeast(<low>,1),KleeneStar(Concat(<_>,RepeatAtLeast("
     "<low>,1)))),<_>}"},
    {"so-33",
     "Unicode escapes in our config are exactly 4 hex digits, nothing more "
     "and nothing less, can you help me validate them?",
     "Repeat(<hex>,4)", "hole{Repeat(<hex>,4)}"},
    {"so-34",
     "Quantity strings are digits optionally split by one comma, so 1234 "
     "or 12,34 pass but 1,2,3 should not.",
     "Concat(RepeatAtLeast(<num>,1),Optional(Concat(<,>,RepeatAtLeast(<num>,"
     "1))))",
     "Concat(hole{RepeatAtLeast(<num>,1)},hole{Optional(Concat(<,>,"
     "RepeatAtLeast(<num>,1))),<,>})"},
    {"so-35",
     "Octet style address: 1 to 3 digits dot 1 to 3 digits dot 1 to 3 "
     "digits dot 1 to 3 digits, values are not range checked.",
     "Concat(RepeatRange(<num>,1,3),Concat(<.>,Concat(RepeatRange(<num>,1,3)"
     ",Concat(<.>,Concat(RepeatRange(<num>,1,3),Concat(<.>,RepeatRange(<num>"
     ",1,3)))))))",
     "hole{Concat(RepeatRange(<num>,1,3),Concat(<.>,RepeatRange(<num>,1,3))),"
     "<.>,RepeatRange(<num>,1,3)}"},
    {"so-36",
     "Short codes are 4 letters or digits followed by a single digit at "
     "the end, five characters in total.",
     "Concat(Repeat(<alphanum>,4),<num>)",
     "Concat(hole{Repeat(<alphanum>,4)},hole{<num>})"},
    {"so-37",
     "Log keys are a colon followed by one or more characters of any kind, "
     "the colon prefix is what identifies them.",
     "Concat(<:>,RepeatAtLeast(<any>,1))",
     "Concat(hole{<:>},hole{RepeatAtLeast(<any>,1)})"},
    {"so-38",
     "Timer values are 2 digits colon 2 digits colon 2 digits, like "
     "01:23:45, no shorter or longer forms.",
     "Concat(Repeat(<num>,2),Concat(<:>,Concat(Repeat(<num>,2),Concat(<:>,"
     "Repeat(<num>,2)))))",
     "hole{Concat(Repeat(<num>,2),<:>),Repeat(<num>,2),<:>}"},
    {"so-39",
     "Ticket ids start with 'ID' followed by exactly 4 digits, for example "
     "ID0042, other prefixes should be rejected.",
     "Concat(Concat(<I>,<D>),Repeat(<num>,4))",
     "Concat(hole{Concat(<I>,<D>)},hole{Repeat(<num>,4)})"},
    {"so-40",
     "The token is one or more groups where each group is a letter "
     "followed by a digit, like a1b2c3.",
     "RepeatAtLeast(Concat(<let>,<num>),1)",
     "hole{RepeatAtLeast(Concat(<let>,<num>),1)}"},
    {"so-41",
     "Phone numbers: an optional 3 digit area code then exactly 7 digits, "
     "so both 5551234 and 2065551234 are fine.",
     "Concat(Optional(Repeat(<num>,3)),Repeat(<num>,7))",
     "Concat(hole{Optional(Repeat(<num>,3))},hole{Repeat(<num>,7)})"},
    {"so-42",
     "Labels must not start with a digit, anything else afterwards is "
     "fine, including digits later in the string.",
     "Not(StartsWith(<num>))", "hole{Not(StartsWith(<num>)),<num>}"},
    {"so-43",
     "Match 2 to 4 vowels followed by a semicolon, this is for a weird "
     "lexer I am building, trust me.",
     "Concat(RepeatRange(<vow>,2,4),<;>)",
     "Concat(hole{RepeatRange(<vow>,2,4)},hole{<;>})"},
    {"so-44",
     "The comment must contain the word 'cat' somewhere, upper case "
     "variants do not count for this exercise.",
     "Contains(Concat(<c>,Concat(<a>,<t>)))",
     "hole{Contains(Concat(<c>,Concat(<a>,<t>)))}"},
    {"so-45",
     "Fields are letters then digits then letters again, each part one or "
     "more, like ab12cd or x9y.",
     "Concat(RepeatAtLeast(<let>,1),Concat(RepeatAtLeast(<num>,1),"
     "RepeatAtLeast(<let>,1)))",
     "Concat(hole{RepeatAtLeast(<let>,1)},hole{RepeatAtLeast(<num>,1),"
     "RepeatAtLeast(<let>,1)})"},
    {"so-46",
     "Amounts use commas every 3 digits: up to 3 digits first, then groups "
     "of exactly 3 digits each preceded by a comma.",
     "Concat(RepeatRange(<num>,1,3),KleeneStar(Concat(<,>,Repeat(<num>,3))))",
     "Concat(hole{RepeatRange(<num>,1,3)},hole{KleeneStar(Concat(<,>,Repeat(<"
     "num>,3))),<,>})"},
    {"so-47",
     "Proper names: one upper case letter followed by one or more lower "
     "case letters, simple as that.",
     "Concat(<cap>,RepeatAtLeast(<low>,1))",
     "Concat(hole{<cap>},hole{RepeatAtLeast(<low>,1)})"},
    {"so-48",
     "Positive integers without leading zeros: one or more digits but the "
     "string must not start with '0'.",
     "And(RepeatAtLeast(<num>,1),Not(StartsWith(<0>)))",
     "hole{RepeatAtLeast(<num>,1),Not(StartsWith(<0>))}"},
    {"so-49",
     "Simple address check: letters followed by an at sign then letters "
     "then a dot and 2 or 3 letters at the end.",
     "Concat(RepeatAtLeast(<let>,1),Concat(<@>,Concat(RepeatAtLeast(<let>,1)"
     ",Concat(<.>,RepeatRange(<let>,2,3)))))",
     "Concat(hole{RepeatAtLeast(<let>,1),<@>},hole{<.>,RepeatRange(<let>,2,3)"
     "})"},
    {"so-50",
     "Discount values: up to 3 digits, optionally a dot and a single "
     "digit, then a percent sign at the very end.",
     "Concat(RepeatRange(<num>,1,3),Concat(Optional(Concat(<.>,<num>)),<%>))",
     "Concat(hole{RepeatRange(<num>,1,3)},hole{Optional(Concat(<.>,<num>)),<%"
     ">})"},
    {"so-51",
     "Country pairs: 2-letter codes separated by semicolons, like DE;FR;US "
     "with exactly two letters in every code.",
     "Concat(Repeat(<let>,2),KleeneStar(Concat(<;>,Repeat(<let>,2))))",
     "hole{Concat(Repeat(<let>,2),KleeneStar(Concat(<;>,Repeat(<let>,2)))),<;"
     ">}"},
    {"so-52",
     "Domain-ish strings: one or more lower case letters followed by "
     "'.com' exactly, nothing after that.",
     "Concat(RepeatAtLeast(<low>,1),Concat(<.>,Concat(<c>,Concat(<o>,<m>))))",
     "Concat(hole{RepeatAtLeast(<low>,1)},hole{Concat(<.>,Concat(<c>,Concat("
     "<o>,<m>)))})"},
    {"so-53",
     "Ranges are written as a 4 digit number, a dash, then another 4 digit "
     "number, like 1000-2000.",
     "Concat(Repeat(<num>,4),Concat(<->,Repeat(<num>,4)))",
     "Concat(hole{Repeat(<num>,4)},hole{<->,Repeat(<num>,4)})"},
    {"so-54",
     "Old phone style: an open parenthesis, 3 digits, a close parenthesis, "
     "a space and then exactly 7 digits.",
     "Concat(<(>,Concat(Repeat(<num>,3),Concat(<)>,Concat(<space>,Repeat(<"
     "num>,7)))))",
     "hole{Concat(<(>,Concat(Repeat(<num>,3),<)>)),<space>,Repeat(<num>,7)}"},
    {"so-55",
     "The reference column holds 3 digits, then a dot, then 1 to 2 more "
     "digits, for example 123.4 or 123.45 but never 1234.5.",
     "Concat(Repeat(<num>,3),Concat(<.>,RepeatRange(<num>,1,2)))",
     "Concat(hole{Repeat(<num>,3),<.>},hole{RepeatRange(<num>,1,2)})"},
    {"so-56",
     "Short identifiers: a letter first, then optionally 1 to 7 more "
     "letters, digits or underscores, 8 characters max.",
     "Concat(<let>,Optional(RepeatRange(Or(<let>,Or(<num>,<_>)),1,7)))",
     "Concat(hole{<let>},hole{RepeatRange(Or(<let>,Or(<num>,<_>)),1,7)})"},
    {"so-57",
     "The value must contain 'abc' somewhere and it must end with one or "
     "more digits, both conditions together.",
     "And(Contains(Concat(<a>,Concat(<b>,<c>))),EndsWith(RepeatAtLeast(<num>"
     ",1)))",
     "hole{Contains(Concat(<a>,Concat(<b>,<c>))),EndsWith(RepeatAtLeast(<num>"
     ",1))}"},
    {"so-58",
     "Bracketed lists: an open bracket, numbers separated by commas, then "
     "a close bracket, like [1,22,3].",
     "Concat(<[>,Concat(Concat(RepeatAtLeast(<num>,1),KleeneStar(Concat(<,>,"
     "RepeatAtLeast(<num>,1)))),<]>))",
     "hole{Concat(RepeatAtLeast(<num>,1),KleeneStar(Concat(<,>,RepeatAtLeast("
     "<num>,1)))),<[>,<]>}"},
    {"so-59",
     "Prices start with a dollar sign, then up to 3 digits, then groups of "
     "3 digits with commas, like $1,200.",
     "Concat(<$>,Concat(RepeatRange(<num>,1,3),KleeneStar(Concat(<,>,Repeat("
     "<num>,3)))))",
     "Concat(hole{<$>},hole{RepeatRange(<num>,1,3),KleeneStar(Concat(<,>,"
     "Repeat(<num>,3)))})"},
    {"so-60",
     "The separator column is exactly one special character, letters, "
     "digits and spaces should all be rejected there.",
     "<spec>", "hole{<spec>}"},
    {"so-61",
     "Pattern codes are 3 groups, each being a letter followed by a digit, "
     "so exactly 6 characters like a1b2c3.",
     "Repeat(Concat(<let>,<num>),3)",
     "hole{Repeat(Concat(<let>,<num>),3)}"},
    {"so-62",
     "Serial keys: 4 alphanumeric characters, a dash, 4 more alphanumeric "
     "characters, a dash, then 4 final alphanumeric characters.",
     "Concat(Repeat(<alphanum>,4),Concat(<->,Concat(Repeat(<alphanum>,4),"
     "Concat(<->,Repeat(<alphanum>,4)))))",
     "hole{Concat(Repeat(<alphanum>,4),<->),Repeat(<alphanum>,4)}"},
};

} // namespace

std::vector<Benchmark> regel::data::stackOverflowSet() {
  std::vector<Benchmark> Out;
  Rng R(0x50f7);
  for (const Entry &E : Entries) {
    Benchmark B;
    B.Id = E.Id;
    B.Description = E.Desc;
    std::string Err;
    B.GroundTruth = parseRegex(E.Truth, &Err);
    assert(B.GroundTruth && "curated ground truth must parse");
    B.GoldSketch = parseSketch(E.Sketch, &Err);
    assert(B.GoldSketch && "curated sketch label must parse");
    GeneratedExamples Ex = generateExamples(B.GroundTruth, R);
    assert(Ex.Ok && "curated ground truth must yield examples");
    B.Initial = std::move(Ex.Initial);
    B.ExtraPos = std::move(Ex.ExtraPos);
    B.ExtraNeg = std::move(Ex.ExtraNeg);
    Out.push_back(std::move(B));
  }
  return Out;
}
