//===- data/ExampleGen.cpp ------------------------------------------------===//

#include "data/ExampleGen.h"

#include "automata/Sample.h"

#include <algorithm>
#include <set>

using namespace regel;
using namespace regel::data;

namespace {

/// Characters that appear in any accepted string (approximated from the
/// sampled positives) — negative mutations draw from this alphabet so they
/// look like near-misses rather than random noise.
std::vector<char> alphabetOf(const std::vector<std::string> &Strs) {
  std::set<char> Set;
  for (const std::string &S : Strs)
    for (char C : S)
      Set.insert(C);
  // Always include a standard pool: languages defined by *absence* of some
  // characters (e.g. "no digits") need out-of-language characters for
  // negative examples.
  for (char C : {'a', 'Z', '0', '9', ' ', '.', ',', '-', '_'})
    Set.insert(C);
  return std::vector<char>(Set.begin(), Set.end());
}

/// One random near-miss mutation of \p S.
std::string mutate(const std::string &S, const std::vector<char> &Alpha,
                   Rng &R) {
  std::string Out = S;
  switch (R.nextBelow(5)) {
  case 0: // replace a character
    if (!Out.empty())
      Out[R.nextBelow(Out.size())] = Alpha[R.nextBelow(Alpha.size())];
    break;
  case 1: // delete a character
    if (!Out.empty())
      Out.erase(R.nextBelow(Out.size()), 1);
    break;
  case 2: // insert a character
    Out.insert(R.nextBelow(Out.size() + 1), 1,
               Alpha[R.nextBelow(Alpha.size())]);
    break;
  case 3: // duplicate a chunk (length violations)
    if (!Out.empty()) {
      size_t At = R.nextBelow(Out.size());
      size_t Len = 1 + R.nextBelow(std::min<size_t>(4, Out.size() - At));
      Out.insert(At, Out.substr(At, Len));
    }
    break;
  case 4: // truncate half
    Out = Out.substr(0, Out.size() / 2);
    break;
  }
  return Out;
}

} // namespace

GeneratedExamples regel::data::generateExamples(const RegexPtr &GroundTruth,
                                                Rng &R,
                                                const ExampleGenConfig &Cfg) {
  GeneratedExamples Out;
  Dfa D = compileRegex(GroundTruth);
  if (D.isEmpty() || D.isTotal())
    return Out; // degenerate language: unusable as a benchmark

  // Positives: distinct accepted strings, preferring a spread of lengths.
  std::vector<std::string> Pos =
      sampleAcceptedSet(D, R, Cfg.NumPos + Cfg.NumExtra, Cfg.MaxLen);
  if (Pos.size() < 2)
    return Out; // language too small for a meaningful PBE task
  // Drop the empty string as an example: it reads as "no example" to users.
  Pos.erase(std::remove(Pos.begin(), Pos.end(), std::string()), Pos.end());
  if (Pos.size() < 2)
    return Out;

  // Negatives: mutate positives until rejected; pad with random strings.
  std::vector<char> Alpha = alphabetOf(Pos);
  std::set<std::string> NegSet;
  unsigned Want = Cfg.NumNeg + Cfg.NumExtra;
  for (unsigned Attempt = 0; Attempt < Want * 30 && NegSet.size() < Want;
       ++Attempt) {
    std::string Cand = mutate(Pos[R.nextBelow(Pos.size())], Alpha, R);
    if (Cand.empty() || Cand.size() > Cfg.MaxLen)
      continue;
    if (!D.matches(Cand))
      NegSet.insert(Cand);
  }
  for (unsigned Attempt = 0; Attempt < Want * 10 && NegSet.size() < Want;
       ++Attempt) {
    // Random string over the positive alphabet.
    std::string Cand;
    unsigned Len = 1 + static_cast<unsigned>(R.nextBelow(Cfg.MaxLen));
    for (unsigned I = 0; I < Len; ++I)
      Cand.push_back(Alpha[R.nextBelow(Alpha.size())]);
    if (!D.matches(Cand))
      NegSet.insert(Cand);
  }
  std::vector<std::string> Neg(NegSet.begin(), NegSet.end());
  if (Neg.size() < 2)
    return Out;

  // Shuffle deterministically so Initial/Extra splits vary in character.
  for (size_t I = Pos.size(); I > 1; --I)
    std::swap(Pos[I - 1], Pos[R.nextBelow(I)]);
  for (size_t I = Neg.size(); I > 1; --I)
    std::swap(Neg[I - 1], Neg[R.nextBelow(I)]);

  unsigned NPos = std::min<size_t>(Cfg.NumPos, Pos.size());
  unsigned NNeg = std::min<size_t>(Cfg.NumNeg, Neg.size());
  Out.Initial.Pos.assign(Pos.begin(), Pos.begin() + NPos);
  Out.Initial.Neg.assign(Neg.begin(), Neg.begin() + NNeg);
  Out.ExtraPos.assign(Pos.begin() + NPos, Pos.end());
  Out.ExtraNeg.assign(Neg.begin() + NNeg, Neg.end());
  Out.Ok = true;
  return Out;
}
