//===- data/ExampleGen.h - Example synthesis from ground truth ---*- C++ -*-//
//
// Part of the Regel reproduction. The original datasets come with
// human-written examples; we regenerate equivalents from each ground-truth
// regex: positives are sampled from its automaton, negatives are near-miss
// mutations of positives (plus random strings over the same alphabet) that
// the automaton rejects. See DESIGN.md, substitution 5.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_DATA_EXAMPLEGEN_H
#define REGEL_DATA_EXAMPLEGEN_H

#include "automata/Compile.h"
#include "support/Random.h"
#include "synth/PartialRegex.h"

namespace regel::data {

/// Example-generation knobs.
struct ExampleGenConfig {
  unsigned NumPos = 4;      ///< initial positives (paper: avg 4)
  unsigned NumNeg = 5;      ///< initial negatives (paper: avg 5)
  unsigned NumExtra = 8;    ///< feedback reserve per polarity
  unsigned MaxLen = 24;     ///< maximum example length
};

/// Generated example sets.
struct GeneratedExamples {
  Examples Initial;
  std::vector<std::string> ExtraPos;
  std::vector<std::string> ExtraNeg;
  bool Ok = false; ///< false when the language is too small/degenerate
};

/// Generates examples for \p GroundTruth. Deterministic given \p R's state.
GeneratedExamples generateExamples(const RegexPtr &GroundTruth, Rng &R,
                                   const ExampleGenConfig &Cfg = {});

} // namespace regel::data

#endif // REGEL_DATA_EXAMPLEGEN_H
