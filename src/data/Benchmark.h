//===- data/Benchmark.h - Benchmark representation ---------------*- C++ -*-//
//
// Part of the Regel reproduction. One benchmark = English description +
// positive/negative examples + ground-truth regex (+ annotated gold sketch
// for parser training, Sec. 7). Extra examples support the iterative
// feedback protocol of Sec. 8.1 (add two examples per iteration).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_DATA_BENCHMARK_H
#define REGEL_DATA_BENCHMARK_H

#include "sketch/Sketch.h"
#include "synth/PartialRegex.h"

#include <string>
#include <vector>

namespace regel::data {

/// One regex-synthesis benchmark.
struct Benchmark {
  std::string Id;
  std::string Description;
  Examples Initial;              ///< examples shipped with the benchmark
  std::vector<std::string> ExtraPos; ///< feedback reserve (Sec. 8.1)
  std::vector<std::string> ExtraNeg;
  RegexPtr GroundTruth;
  SketchPtr GoldSketch; ///< annotation for parser training

  /// Examples visible after \p Iteration rounds of feedback: each round
  /// reveals one extra positive and one extra negative example ("two
  /// additional examples" per Sec. 8.1).
  Examples examplesAt(unsigned Iteration) const;
};

/// Sanity-checks a benchmark: ground truth accepts all positives and
/// rejects all negatives (including the feedback reserve). Returns a
/// diagnostic string, empty when consistent.
std::string validateBenchmark(const Benchmark &B);

} // namespace regel::data

#endif // REGEL_DATA_BENCHMARK_H
