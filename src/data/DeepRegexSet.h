//===- data/DeepRegexSet.h - DeepRegex-style benchmark generator -*- C++ -*-//
//
// Part of the Regel reproduction. The original DeepRegex set was built by
// sampling regexes from a synchronous grammar, rendering synthetic English,
// and having crowd workers paraphrase it (Sec. 7). We regenerate the same
// flavour of data: a synchronous CFG samples (regex, English) pairs with
// small paraphrase variation, examples come from the automaton sampler, and
// the sketch label is the paper's root-operator hole-ification.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_DATA_DEEPREGEXSET_H
#define REGEL_DATA_DEEPREGEXSET_H

#include "data/Benchmark.h"

namespace regel::data {

/// Generates the DeepRegex-style suite (deterministic for a given seed).
/// \p Count defaults to the paper's 200 curated benchmarks.
std::vector<Benchmark> deepRegexSet(unsigned Count = 200,
                                    uint64_t Seed = 0xdeeb);

/// The paper's sketch-label rule for this set: replace the root operator
/// with a hole whose components are the operator's arguments.
SketchPtr rootHoleSketch(const RegexPtr &GroundTruth);

} // namespace regel::data

#endif // REGEL_DATA_DEEPREGEXSET_H
