//===- data/Benchmark.cpp -------------------------------------------------===//

#include "data/Benchmark.h"

#include "regex/Matcher.h"
#include "regex/Printer.h"

using namespace regel;
using namespace regel::data;

Examples Benchmark::examplesAt(unsigned Iteration) const {
  Examples E = Initial;
  for (unsigned I = 0; I < Iteration; ++I) {
    if (I < ExtraPos.size())
      E.Pos.push_back(ExtraPos[I]);
    if (I < ExtraNeg.size())
      E.Neg.push_back(ExtraNeg[I]);
  }
  return E;
}

std::string regel::data::validateBenchmark(const Benchmark &B) {
  if (!B.GroundTruth)
    return B.Id + ": missing ground truth";
  DirectMatcher M(B.GroundTruth);
  auto CheckPos = [&](const std::vector<std::string> &Strs) -> std::string {
    for (const std::string &S : Strs)
      if (!M.matches(S))
        return B.Id + ": ground truth rejects positive \"" + S + "\" (" +
               printRegex(B.GroundTruth) + ")";
    return "";
  };
  auto CheckNeg = [&](const std::vector<std::string> &Strs) -> std::string {
    for (const std::string &S : Strs)
      if (M.matches(S))
        return B.Id + ": ground truth accepts negative \"" + S + "\" (" +
               printRegex(B.GroundTruth) + ")";
    return "";
  };
  std::string Err;
  if (!(Err = CheckPos(B.Initial.Pos)).empty())
    return Err;
  if (!(Err = CheckPos(B.ExtraPos)).empty())
    return Err;
  if (!(Err = CheckNeg(B.Initial.Neg)).empty())
    return Err;
  if (!(Err = CheckNeg(B.ExtraNeg)).empty())
    return Err;
  if (B.Initial.Pos.empty() || B.Initial.Neg.empty())
    return B.Id + ": needs at least one positive and one negative example";
  return "";
}
