//===- data/StackOverflowSet.h - Curated hard benchmark suite ----*- C++ -*-//
//
// Part of the Regel reproduction. A hand-curated suite of 62 realistic
// validation tasks mirroring the paper's StackOverflow set (Sec. 7):
// longer, noisier English (~26 words avg), larger target regexes (~11 AST
// nodes avg), and manually written sketch labels that mimic the structure
// of the utterance. Examples are regenerated from the ground truth
// (DESIGN.md, substitution 5).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_DATA_STACKOVERFLOWSET_H
#define REGEL_DATA_STACKOVERFLOWSET_H

#include "data/Benchmark.h"

namespace regel::data {

/// Builds the 62-task suite (deterministic).
std::vector<Benchmark> stackOverflowSet();

} // namespace regel::data

#endif // REGEL_DATA_STACKOVERFLOWSET_H
