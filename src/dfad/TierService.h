//===- dfad/TierService.h - SynthService facade for the DFA tier *- C++ -*-===//
//
// Part of the Regel reproduction. Adapts a DfaTierStore to the
// service::SynthService interface so the existing SocketServer can host
// a dedicated tier process (examples/regel_dfad) with zero transport
// changes: the server's poll() loop, framing, overload handling and
// `dfa` frame dispatch all work as they do for a synthesis backend.
//
// A tier process does not synthesize. Any job submitted to it completes
// immediately as Rejected (exactly-one-completion contract preserved),
// health reports zero workers, and statsJson/metricsText surface the
// tier store's counters. Clients that only speak `dfa get/put/stats`
// never see any of that — it exists so the server harness has a
// well-formed backend to stand on.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_DFAD_TIERSERVICE_H
#define REGEL_DFAD_TIERSERVICE_H

#include "dfad/Tier.h"
#include "obs/Metrics.h"
#include "service/SynthService.h"
#include "support/Clock.h"
#include "support/Mutex.h"

#include <condition_variable>
#include <memory>

namespace regel::dfad {

/// The standalone tier's service backend: a DfaTierStore plus the
/// minimal SynthService surface the socket server requires.
class DfaTierService : public service::SynthService {
public:
  explicit DfaTierService(
      std::shared_ptr<DfaTierStore> S,
      std::shared_ptr<const Clock> Clk = Clock::steady());

  service::Ticket submit(engine::JobRequest R) override;
  bool cancel(service::Ticket T) override;
  std::vector<service::Completion> pollCompleted() override;
  std::vector<service::Completion> waitCompleted(int64_t TimeoutMs) override;
  std::string statsJson() const override;
  service::ServiceHealth health() const override;
  std::string metricsText() const override;
  void setWakeup(std::function<void()> Fn) override;

  const std::shared_ptr<DfaTierStore> &store() const { return Store; }

private:
  // Requires M held by the caller (CV-wait predicate: Clang analyzes the
  // lambda body as an unlocked function).
  bool hasCompletionsLocked() const REGEL_NO_THREAD_SAFETY_ANALYSIS {
    return !Done.empty();
  }

  std::shared_ptr<DfaTierStore> Store;
  std::shared_ptr<const Clock> Clk;

  mutable Mutex M;
  uint64_t NextTicket REGEL_GUARDED_BY(M) = 1;
  std::vector<service::Completion> Done REGEL_GUARDED_BY(M);
  std::function<void()> Wakeup REGEL_GUARDED_BY(M);
  std::condition_variable DoneCv;

  /// Rendered at metricsText() time by mirroring the store's counters —
  /// the same set-at-exposition pattern the engine uses.
  mutable obs::Registry Reg;
};

} // namespace regel::dfad

#endif // REGEL_DFAD_TIERSERVICE_H
