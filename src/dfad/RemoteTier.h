//===- dfad/RemoteTier.h - TCP client for a remote DFA tier -----*- C++ -*-===//
//
// Part of the Regel reproduction. DfaTierClient over the v2 wire
// protocol's `dfa` frames, for engines whose tier lives in another
// process (examples/regel_dfad). Synchronous bounded RPC, deliberately
// simpler than service/RemoteService's reader-thread machinery: a tier
// fetch happens at most once per (engine, distinct regex) cold miss —
// single-flight collapses concurrent ones — so per-call latency matters
// far less than never stalling synthesis.
//
// Concurrency model: a small pool of connections, each checked out
// EXCLUSIVELY for the duration of one RPC. The pool mutex only guards
// the vector push/pop — no socket I/O, connect, or parse ever runs
// under it (tools/analyze's blocking-under-lock gate enforces this
// repo-wide). Boundedness comes from SO_RCVTIMEO/SO_SNDTIMEO on every
// socket: a dead or slow tier turns an RPC into an error after
// RpcTimeoutMs, and an error IS a miss to the caller. No clock reads —
// kernel socket timeouts are transport configuration, not semantic
// time, so the Clock seam is not involved.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_DFAD_REMOTETIER_H
#define REGEL_DFAD_REMOTETIER_H

#include "dfad/Tier.h"
#include "support/Mutex.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace regel::dfad {

/// TCP DfaTierClient speaking `v2 dfa get/put/stats` frames.
class RemoteDfaTier : public DfaTierClient {
public:
  struct Options {
    /// Per-RPC socket send/receive timeout. An RPC that trips it fails
    /// (and the connection is discarded), it never blocks past this.
    int RpcTimeoutMs = 2000;

    /// Connections kept open for reuse; checkouts beyond this connect
    /// fresh and close on release.
    unsigned MaxIdleConns = 4;
  };

  // (No `= {}` default arg: GCC rejects brace defaults for NSDMI-bearing
  // nested structs inside an incomplete enclosing class.)
  RemoteDfaTier(std::string Host, uint16_t Port);
  RemoteDfaTier(std::string Host, uint16_t Port, Options O);
  ~RemoteDfaTier() override;

  RemoteDfaTier(const RemoteDfaTier &) = delete;
  RemoteDfaTier &operator=(const RemoteDfaTier &) = delete;

  bool get(const std::string &Key, std::string &Out) override;
  void put(const std::string &Key, const std::string &Blob) override;

  /// Fetches the tier's stats JSON over the wire; "" on failure. Used by
  /// monitoring and tests, never by the synthesis hot path.
  std::string statsJson();

  /// RPCs that failed (connect, timeout, malformed reply). Each one
  /// degraded to a miss or a dropped write-through.
  uint64_t rpcFailures() const {
    return RpcFailures.load(std::memory_order_relaxed);
  }

private:
  /// One pooled connection: the fd plus any bytes received past the last
  /// consumed line (stream framing is per-connection state).
  struct Conn {
    int Fd = -1;
    std::string Buf;
  };

  Conn acquire();                      ///< pooled or fresh; Fd<0 on failure
  void release(Conn C, bool Healthy);  ///< return to pool or close
  Conn connectNew();                   ///< fresh connection, greeting consumed
  bool readLine(Conn &C, std::string &Line);
  bool writeAll(int Fd, const std::string &Data);
  /// One request/reply exchange on a checked-out connection; false on
  /// any transport error.
  bool exchange(const std::string &Frame, std::string &ReplyLine);

  std::string Host;
  uint16_t Port;
  Options Opts;

  Mutex PoolM;
  std::vector<Conn> Pool REGEL_GUARDED_BY(PoolM);

  std::atomic<uint64_t> RpcFailures{0};
};

} // namespace regel::dfad

#endif // REGEL_DFAD_REMOTETIER_H
