//===- dfad/Tier.cpp ------------------------------------------------------===//

#include "dfad/Tier.h"

#include "automata/Serialize.h"

#include <algorithm>
#include <cstdio>
#include <functional>

using namespace regel;
using namespace regel::dfad;

namespace {

/// Splits a global cap over \p NumShards (same policy as engine/Caches):
/// floored, but never below one entry per shard.
template <typename T> T perShard(T GlobalCap, size_t NumShards) {
  if (GlobalCap == 0)
    return 0;
  return std::max<T>(1, GlobalCap / static_cast<T>(NumShards));
}

} // namespace

DfaTierStore::DfaTierStore(unsigned NumShards, engine::CacheLimits L)
    : Limits(L) {
  NumShards = std::max(1u, NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  MaxEntriesPerShard = perShard(Limits.MaxEntries, Shards.size());
  MaxCostPerShard = perShard(Limits.MaxCost, Shards.size());
}

DfaTierStore::Shard &DfaTierStore::shardFor(const std::string &Key) {
  return *Shards[engine::mix64(std::hash<std::string>{}(Key)) %
                 Shards.size()];
}

void DfaTierStore::evictOverLocked(Shard &S) {
  // Second-chance sweep, exactly like the engine's stores: a
  // hit-since-last-sweep entry reaching the cold end is recycled once
  // instead of evicted, bounded by the list length at entry.
  size_t Chances = S.Lru.size();
  while (!S.Lru.empty() &&
         ((MaxEntriesPerShard && S.Map.size() > MaxEntriesPerShard) ||
          (MaxCostPerShard && S.Cost > MaxCostPerShard))) {
    Entry &Victim = S.Lru.back();
    if (Victim.Hot && Chances > 0) {
      --Chances;
      Victim.Hot = false;
      S.Lru.splice(S.Lru.begin(), S.Lru, std::prev(S.Lru.end()));
      continue;
    }
    S.Cost -= Victim.Cost;
    S.Map.erase(Victim.Key);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

bool DfaTierStore::get(const std::string &Key, std::string &Out) {
  Shard &S = shardFor(Key);
  MutexLock Guard(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  It->second->Hot = true;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // LRU touch
  Out = It->second->Blob;
  return true;
}

bool DfaTierStore::put(const std::string &Key, const std::string &Blob) {
  // Validation runs before any lock: parseDfa walks the whole blob, and
  // shard mutexes are leaf-level by contract. The tier re-validates even
  // blobs from trusted in-process engines — one check here keeps poison
  // out of a store the entire fleet reads.
  if (Key.empty() || !parseDfa(Blob)) {
    PutRejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t Cost = Key.size() + Blob.size();
  Shard &S = shardFor(Key);
  MutexLock Guard(S.M);
  auto It = S.Map.find(Key);
  if (It != S.Map.end()) {
    // First publisher wins; a duplicate put means a second engine needed
    // this entry, so it counts as a reference like a get hit does.
    It->second->Hot = true;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return true;
  }
  Puts.fetch_add(1, std::memory_order_relaxed);
  S.Lru.push_front(Entry{Key, Blob, Cost});
  S.Cost += Cost;
  S.Map.emplace(Key, S.Lru.begin());
  evictOverLocked(S);
  return true;
}

size_t DfaTierStore::size() const {
  size_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    MutexLock Guard(S->M);
    Total += S->Map.size();
  }
  return Total;
}

uint64_t DfaTierStore::blobBytes() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    MutexLock Guard(S->M);
    Total += S->Cost;
  }
  return Total;
}

void DfaTierStore::clear() {
  for (std::unique_ptr<Shard> &S : Shards) {
    MutexLock Guard(S->M);
    S->Map.clear();
    S->Lru.clear();
    S->Cost = 0;
  }
}

std::string DfaTierStore::statsJson() const {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"dfa_tier\":{\"entries\":%llu,\"blob_bytes\":%llu,"
      "\"hits\":%llu,\"misses\":%llu,\"puts\":%llu,"
      "\"put_rejected\":%llu,\"evictions\":%llu}}",
      (unsigned long long)size(), (unsigned long long)blobBytes(),
      (unsigned long long)hits(), (unsigned long long)misses(),
      (unsigned long long)puts(), (unsigned long long)putRejected(),
      (unsigned long long)evictions());
  return Buf;
}
