//===- dfad/RemoteTier.cpp ------------------------------------------------===//

#include "dfad/RemoteTier.h"

#include "service/Protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace regel;
using namespace regel::dfad;

RemoteDfaTier::RemoteDfaTier(std::string H, uint16_t P)
    : RemoteDfaTier(std::move(H), P, Options()) {}

RemoteDfaTier::RemoteDfaTier(std::string H, uint16_t P, Options O)
    : Host(std::move(H)), Port(P), Opts(O) {}

RemoteDfaTier::~RemoteDfaTier() {
  MutexLock Guard(PoolM);
  for (Conn &C : Pool)
    if (C.Fd >= 0)
      ::close(C.Fd);
  Pool.clear();
}

RemoteDfaTier::Conn RemoteDfaTier::connectNew() {
  Conn C;
  int S = ::socket(AF_INET, SOCK_STREAM, 0);
  if (S < 0)
    return C;
  // Kernel-side RPC bound: every send/recv on this socket gives up after
  // RpcTimeoutMs, so no tier call can stall a synthesis worker.
  timeval Tv{};
  Tv.tv_sec = Opts.RpcTimeoutMs / 1000;
  Tv.tv_usec = (Opts.RpcTimeoutMs % 1000) * 1000;
  ::setsockopt(S, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(S, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1 ||
      ::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(S);
    return C;
  }
  C.Fd = S;
  // The server greets every connection with the v1 banner line; consume
  // it so the stream is positioned at request/reply framing.
  std::string Banner;
  if (!readLine(C, Banner)) {
    ::close(C.Fd);
    C.Fd = -1;
  }
  return C;
}

RemoteDfaTier::Conn RemoteDfaTier::acquire() {
  {
    MutexLock Guard(PoolM);
    if (!Pool.empty()) {
      Conn C = std::move(Pool.back());
      Pool.pop_back();
      return C;
    }
  }
  // Connect OUTSIDE the pool lock: other threads keep draining/refilling
  // the pool while this one performs the handshake.
  return connectNew();
}

void RemoteDfaTier::release(Conn C, bool Healthy) {
  if (C.Fd < 0)
    return;
  if (Healthy) {
    MutexLock Guard(PoolM);
    if (Pool.size() < Opts.MaxIdleConns) {
      Pool.push_back(std::move(C));
      return;
    }
  }
  ::close(C.Fd);
}

bool RemoteDfaTier::writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t Sent =
        ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (Sent <= 0) {
      if (Sent < 0 && errno == EINTR)
        continue;
      return false; // includes EAGAIN from SO_SNDTIMEO: RPC over budget
    }
    Off += static_cast<size_t>(Sent);
  }
  return true;
}

bool RemoteDfaTier::readLine(Conn &C, std::string &Line) {
  // One frame plus slack: a conforming peer never sends more (the codec
  // rejects oversized frames), so beyond this the stream is garbage.
  const size_t MaxBuf = protocol::MaxFrameBytes + 1024;
  for (;;) {
    size_t Nl = C.Buf.find('\n');
    if (Nl != std::string::npos) {
      Line = C.Buf.substr(0, Nl);
      C.Buf.erase(0, Nl + 1);
      return true;
    }
    if (C.Buf.size() > MaxBuf)
      return false;
    char Tmp[4096];
    ssize_t Got = ::recv(C.Fd, Tmp, sizeof(Tmp), 0);
    if (Got <= 0) {
      if (Got < 0 && errno == EINTR)
        continue;
      return false; // peer closed, or SO_RCVTIMEO: RPC over budget
    }
    C.Buf.append(Tmp, static_cast<size_t>(Got));
  }
}

bool RemoteDfaTier::exchange(const std::string &Frame,
                             std::string &ReplyLine) {
  Conn C = acquire();
  if (C.Fd < 0) {
    RpcFailures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool Ok = writeAll(C.Fd, Frame + "\n") && readLine(C, ReplyLine);
  release(std::move(C), Ok);
  if (!Ok)
    RpcFailures.fetch_add(1, std::memory_order_relaxed);
  return Ok;
}

bool RemoteDfaTier::get(const std::string &Key, std::string &Out) {
  protocol::Request Req;
  Req.K = protocol::Request::Kind::DfaGet;
  Req.Key = Key;
  std::string Reply;
  if (!exchange(protocol::encodeRequest(Req, protocol::Version::V2), Reply))
    return false;
  protocol::Response Resp;
  if (protocol::decodeResponse(Reply, protocol::Version::V2, Resp) !=
          protocol::ErrorCode::None ||
      Resp.K != protocol::Response::Kind::Dfa || !Resp.Found) {
    if (Resp.K != protocol::Response::Kind::Dfa)
      RpcFailures.fetch_add(1, std::memory_order_relaxed);
    return false; // miss, or a malformed/error reply degrading to one
  }
  Out = Resp.Detail;
  return true;
}

void RemoteDfaTier::put(const std::string &Key, const std::string &Blob) {
  protocol::Request Req;
  Req.K = protocol::Request::Kind::DfaPut;
  Req.Key = Key;
  Req.Blob = Blob;
  std::string Reply;
  if (!exchange(protocol::encodeRequest(Req, protocol::Version::V2), Reply))
    return; // best-effort by contract
  protocol::Response Resp;
  if (protocol::decodeResponse(Reply, protocol::Version::V2, Resp) !=
          protocol::ErrorCode::None ||
      Resp.K != protocol::Response::Kind::Ok)
    RpcFailures.fetch_add(1, std::memory_order_relaxed);
}

std::string RemoteDfaTier::statsJson() {
  protocol::Request Req;
  Req.K = protocol::Request::Kind::DfaStats;
  std::string Reply;
  if (!exchange(protocol::encodeRequest(Req, protocol::Version::V2), Reply))
    return std::string();
  protocol::Response Resp;
  if (protocol::decodeResponse(Reply, protocol::Version::V2, Resp) !=
          protocol::ErrorCode::None ||
      Resp.K != protocol::Response::Kind::Stats)
    return std::string();
  return Resp.Detail;
}
