//===- dfad/Tier.h - Shared DFA tier: store + client seam -------*- C++ -*-===//
//
// Part of the Regel reproduction. The fleet-shared DFA tier (the
// ROADMAP's "compute each shared artifact once" item): a bounded,
// sharded map from canonical regex text to serialized DFA blobs
// (automata/Serialize.h), owned once per fleet instead of once per
// engine. Engines reach it through the DfaTierClient seam —
// LocalDfaTier for a router-embedded tier serving N in-process engines,
// RemoteTier.h's TCP client for the standalone examples/regel_dfad
// process — and layer it under their shard-local stores via
// engine::TieredDfaStore.
//
// The tier is deliberately dumb: it never parses a regex and never
// compiles anything. Keys are opaque strings (the engine uses
// printRegex's canonical form), values are opaque-but-validated blobs —
// put() runs parseDfa once so a corrupt or hostile blob can never enter
// the shared store and be served to the whole fleet.
//
// Bounded exactly like the engine's caches: engine::CacheLimits with a
// per-shard second-chance LRU; cost here is bytes (key + blob), since
// blob size is what a serving tier process actually spends.
//
// Lock discipline: shard mutexes are leaf-level — no I/O, no parse, no
// callback runs under them (put() validates BEFORE locking).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_DFAD_TIER_H
#define REGEL_DFAD_TIER_H

#include "engine/Caches.h"
#include "support/Mutex.h"

#include <atomic>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace regel::dfad {

/// A sharded, thread-safe, LRU-bounded key -> DFA-blob store.
class DfaTierStore {
public:
  explicit DfaTierStore(unsigned NumShards = 16,
                        engine::CacheLimits Limits = {});

  /// Fills \p Out with the blob for \p Key and returns true (touching
  /// the entry's recency); false on a miss.
  bool get(const std::string &Key, std::string &Out);

  /// Validates \p Blob (parseDfa + MaxDfaBlobBytes) and stores it; the
  /// first publisher wins, a duplicate put counts as a reference.
  /// Returns false only when the blob is rejected (oversized or
  /// malformed — counted in putRejected), never for duplicates.
  bool put(const std::string &Key, const std::string &Blob);

  size_t size() const;
  uint64_t blobBytes() const; ///< summed cost (key + blob bytes)
  void clear();

  const engine::CacheLimits &limits() const { return Limits; }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t puts() const { return Puts.load(std::memory_order_relaxed); }
  uint64_t putRejected() const {
    return PutRejected.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// One JSON object with the counters and occupancy above (the
  /// standalone tier process serves this as its stats surface).
  std::string statsJson() const;

private:
  struct Entry {
    std::string Key;
    std::string Blob;
    uint64_t Cost;
    bool Hot = false; ///< hit since it last reached the cold end
  };
  struct Shard {
    mutable Mutex M;
    std::list<Entry> Lru REGEL_GUARDED_BY(M); ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator>
        Map REGEL_GUARDED_BY(M);
    uint64_t Cost REGEL_GUARDED_BY(M) = 0; ///< summed entry cost
  };

  Shard &shardFor(const std::string &Key);
  void evictOverLocked(Shard &S) REGEL_REQUIRES(S.M);

  std::vector<std::unique_ptr<Shard>> Shards;
  engine::CacheLimits Limits;
  size_t MaxEntriesPerShard = 0;
  uint64_t MaxCostPerShard = 0;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Puts{0};
  std::atomic<uint64_t> PutRejected{0};
  std::atomic<uint64_t> Evictions{0};
};

/// How an engine reaches a DFA tier, local or remote. Implementations
/// must be thread-safe (every worker thread of every engine calls
/// through one client) and must NEVER block unboundedly: a slow or dead
/// tier degrades to a miss, it must not stall synthesis.
class DfaTierClient {
public:
  virtual ~DfaTierClient() = default;

  /// Fetches the blob for \p Key into \p Out. False on miss or any
  /// transport problem (a failed fetch IS a miss to the caller).
  virtual bool get(const std::string &Key, std::string &Out) = 0;

  /// Best-effort write-through of a freshly compiled DFA's blob. May
  /// drop silently (tier full, transport down).
  virtual void put(const std::string &Key, const std::string &Blob) = 0;
};

/// In-process client: the router-embedded tier, shared by N local
/// engines through plain pointer calls.
class LocalDfaTier : public DfaTierClient {
public:
  explicit LocalDfaTier(std::shared_ptr<DfaTierStore> S)
      : Store(std::move(S)) {}

  bool get(const std::string &Key, std::string &Out) override {
    return Store->get(Key, Out);
  }
  void put(const std::string &Key, const std::string &Blob) override {
    Store->put(Key, Blob);
  }

  const std::shared_ptr<DfaTierStore> &store() const { return Store; }

private:
  std::shared_ptr<DfaTierStore> Store;
};

} // namespace regel::dfad

#endif // REGEL_DFAD_TIER_H
