//===- dfad/TierService.cpp -----------------------------------------------===//

#include "dfad/TierService.h"

using namespace regel;
using namespace regel::dfad;
using namespace regel::service;

DfaTierService::DfaTierService(std::shared_ptr<DfaTierStore> S,
                               std::shared_ptr<const Clock> C)
    : Store(std::move(S)), Clk(std::move(C)) {}

Ticket DfaTierService::submit(engine::JobRequest R) {
  (void)R;
  // A tier process does not synthesize: reject at submit, delivering the
  // verdict through the completion stream like every other backend
  // (exactly one completion per submission).
  Completion C;
  C.Result.Rejected = true;
  std::function<void()> Poke;
  {
    MutexLock Guard(M);
    C.Id = NextTicket++;
    Done.push_back(C);
    Poke = Wakeup;
  }
  DoneCv.notify_all();
  if (Poke)
    Poke(); // invoked outside the lock (callback discipline)
  return C.Id;
}

bool DfaTierService::cancel(Ticket T) {
  (void)T;
  return false; // nothing is ever in flight
}

std::vector<Completion> DfaTierService::pollCompleted() {
  MutexLock Guard(M);
  std::vector<Completion> Out;
  Out.swap(Done);
  return Out;
}

std::vector<Completion> DfaTierService::waitCompleted(int64_t TimeoutMs) {
  UniqueLock Lock(M);
  Clk->waitFor(DoneCv, Lock.native(), TimeoutMs,
               [this] { return hasCompletionsLocked(); });
  std::vector<Completion> Out;
  Out.swap(Done);
  return Out;
}

std::string DfaTierService::statsJson() const { return Store->statsJson(); }

ServiceHealth DfaTierService::health() const {
  ServiceHealth H;
  H.Healthy = true;
  H.Workers = 0; // a tier serves lookups, it runs no synthesis workers
  return H;
}

std::string DfaTierService::metricsText() const {
  Reg.counter("regel_dfa_tier_hits_total").set(Store->hits());
  Reg.counter("regel_dfa_tier_misses_total").set(Store->misses());
  Reg.counter("regel_dfa_tier_puts_total").set(Store->puts());
  Reg.counter("regel_dfa_tier_put_rejected_total").set(Store->putRejected());
  Reg.counter("regel_dfa_tier_evictions_total").set(Store->evictions());
  Reg.gauge("regel_dfa_tier_entries").set(static_cast<int64_t>(Store->size()));
  Reg.gauge("regel_dfa_tier_blob_bytes")
      .set(static_cast<int64_t>(Store->blobBytes()));
  return Reg.renderText();
}

void DfaTierService::setWakeup(std::function<void()> Fn) {
  MutexLock Guard(M);
  Wakeup = std::move(Fn);
}
