//===- core/ActiveLearner.h - Membership-query disambiguation ----*- C++ -*-//
//
// Part of the Regel reproduction; implements the paper's Sec. 10 future
// work: "a regex synthesis tool that would ask the user membership queries
// to disambiguate between multiple different solutions that are consistent
// with the examples."
//
// Given the top-k consistent regexes from a synthesis run, the learner
// repeatedly picks two semantically distinct candidates, derives a
// shortest distinguishing string from their automata, and asks the user
// (an oracle) whether that string should match. Each answer eliminates at
// least one candidate class and yields a new example for re-synthesis.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_CORE_ACTIVELEARNER_H
#define REGEL_CORE_ACTIVELEARNER_H

#include "automata/Compile.h"
#include "synth/PartialRegex.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace regel {

/// Interactive disambiguator over a candidate set.
class ActiveLearner {
public:
  /// \p Candidates are regexes already consistent with the user's
  /// examples (e.g. RegelResult answers). Null entries are dropped.
  explicit ActiveLearner(std::vector<RegexPtr> Candidates);

  /// The next membership query, or nullopt when the remaining candidates
  /// are pairwise equivalent (nothing left to distinguish).
  std::optional<std::string> nextQuery();

  /// Records the oracle's answer for \p Query: candidates disagreeing
  /// with the answer are eliminated. Returns the number eliminated.
  size_t answer(const std::string &Query, bool InLanguage);

  /// Candidates still alive, in their original order.
  const std::vector<RegexPtr> &candidates() const { return Candidates; }

  /// True when every remaining candidate denotes the same language.
  bool converged();

  /// Examples accumulated from the answered queries (feed these back into
  /// the synthesizer for another round if the candidate set runs dry).
  const Examples &learnedExamples() const { return Learned; }

private:
  std::vector<RegexPtr> Candidates;
  DfaCache Cache;
  Examples Learned;
};

/// Result of running active learning to convergence.
struct ActiveResult {
  RegexPtr Final;            ///< a representative of the surviving class
  unsigned QueriesAsked = 0; ///< membership queries issued
  Examples Learned;          ///< examples induced by the answers
};

/// Drives an ActiveLearner with \p Oracle (truth membership) until the
/// candidates converge or \p MaxQueries is hit.
ActiveResult disambiguate(std::vector<RegexPtr> Candidates,
                          const std::function<bool(const std::string &)> &Oracle,
                          unsigned MaxQueries = 16);

} // namespace regel

#endif // REGEL_CORE_ACTIVELEARNER_H
