//===- core/ActiveLearner.cpp ---------------------------------------------===//

#include "core/ActiveLearner.h"

#include "regex/Matcher.h"

#include <algorithm>

using namespace regel;

ActiveLearner::ActiveLearner(std::vector<RegexPtr> Candidates) {
  for (RegexPtr &C : Candidates)
    if (C)
      this->Candidates.push_back(std::move(C));
}

std::optional<std::string> ActiveLearner::nextQuery() {
  // Find the first pair of semantically distinct candidates; their
  // shortest distinguishing string is the most informative one-bit
  // question we can ask.
  for (size_t I = 0; I < Candidates.size(); ++I) {
    const Dfa &DI = Cache.get(Candidates[I]);
    for (size_t J = I + 1; J < Candidates.size(); ++J) {
      const Dfa &DJ = Cache.get(Candidates[J]);
      if (auto Witness = Dfa::distinguishingString(DI, DJ))
        return Witness;
    }
  }
  return std::nullopt;
}

size_t ActiveLearner::answer(const std::string &Query, bool InLanguage) {
  size_t Before = Candidates.size();
  Candidates.erase(
      std::remove_if(Candidates.begin(), Candidates.end(),
                     [&](const RegexPtr &C) {
                       return Cache.get(C).matches(Query) != InLanguage;
                     }),
      Candidates.end());
  if (InLanguage)
    Learned.Pos.push_back(Query);
  else
    Learned.Neg.push_back(Query);
  return Before - Candidates.size();
}

bool ActiveLearner::converged() { return !nextQuery().has_value(); }

ActiveResult regel::disambiguate(
    std::vector<RegexPtr> Candidates,
    const std::function<bool(const std::string &)> &Oracle,
    unsigned MaxQueries) {
  ActiveLearner Learner(std::move(Candidates));
  ActiveResult Result;
  while (Result.QueriesAsked < MaxQueries) {
    std::optional<std::string> Query = Learner.nextQuery();
    if (!Query)
      break;
    ++Result.QueriesAsked;
    Learner.answer(*Query, Oracle(*Query));
  }
  Result.Learned = Learner.learnedExamples();
  if (!Learner.candidates().empty())
    Result.Final = Learner.candidates().front();
  return Result;
}
