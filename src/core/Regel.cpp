//===- core/Regel.cpp -----------------------------------------------------===//

#include "core/Regel.h"

#include "support/Timer.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_set>

using namespace regel;

Regel::Regel(std::shared_ptr<nlp::SemanticParser> Parser, RegelConfig Cfg)
    : Parser(std::move(Parser)), Cfg(std::move(Cfg)) {}

RegelResult Regel::synthesize(const std::string &Description,
                              const Examples &E) const {
  Stopwatch ParseWatch;
  std::vector<nlp::ScoredSketch> Scored =
      Parser->parse(Description, Cfg.NumSketches);
  std::vector<SketchPtr> Sketches;
  for (nlp::ScoredSketch &S : Scored)
    Sketches.push_back(std::move(S.Sketch));
  if (Sketches.empty())
    Sketches.push_back(Sketch::unconstrained()); // fall back to pure PBE
  double ParseMs = ParseWatch.elapsedMs();

  RegelResult Result = synthesizeFromSketches(Sketches, E);
  Result.ParseMs = ParseMs;
  return Result;
}

RegelResult Regel::synthesizeFromSketches(
    const std::vector<SketchPtr> &Sketches, const Examples &E) const {
  RegelResult Result;
  Result.Sketches = Sketches;
  Stopwatch SynthWatch;
  Deadline Total(Cfg.BudgetMs);

  // Per-sketch budget: an equal split of the total, with a floor so early
  // (better-ranked) sketches get a meaningful slice even for large lists.
  int64_t PerSketch =
      Cfg.BudgetMs > 0
          ? std::max<int64_t>(Cfg.BudgetMs / std::max<size_t>(
                                                 Sketches.size(), 1),
                              250)
          : 0;

  std::mutex Lock;
  std::unordered_set<size_t> Seen;
  std::atomic<bool> Done{false};
  std::atomic<size_t> Next{0};

  auto worker = [&]() {
    while (!Done.load()) {
      size_t Idx = Next.fetch_add(1);
      if (Idx >= Sketches.size() || Total.expired())
        return;
      SynthConfig SC = Cfg.Synth;
      SC.TopK = Cfg.TopK;
      SC.BudgetMs = PerSketch;
      if (Cfg.BudgetMs > 0) {
        int64_t Remaining =
            Cfg.BudgetMs - static_cast<int64_t>(Total.elapsedMs());
        if (Remaining <= 0)
          return;
        SC.BudgetMs = std::min<int64_t>(PerSketch, Remaining);
      }
      Synthesizer Engine(SC);
      SynthResult SR = Engine.run(Sketches[Idx], E);
      if (SR.Solutions.empty())
        continue;
      std::lock_guard<std::mutex> Guard(Lock);
      for (RegexPtr &R : SR.Solutions) {
        if (!Seen.insert(R->hash()).second)
          continue;
        Result.Answers.push_back(
            {std::move(R), static_cast<unsigned>(Idx), Sketches[Idx]});
        if (Result.Answers.size() >= Cfg.TopK) {
          Done.store(true);
          break;
        }
      }
    }
  };

  if (Cfg.Threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T < Cfg.Threads; ++T)
      Pool.emplace_back(worker);
    for (std::thread &T : Pool)
      T.join();
  }

  Result.SynthMs = SynthWatch.elapsedMs();
  return Result;
}
