//===- core/Regel.cpp -----------------------------------------------------===//

#include "core/Regel.h"

#include "engine/Engine.h"
#include "support/Mutex.h"
#include "support/Timer.h"

#include <algorithm>
#include <condition_variable>

using namespace regel;

namespace {

engine::EngineConfig engineConfigFor(const RegelConfig &Cfg) {
  engine::EngineConfig EC;
  EC.Threads = std::max(1u, Cfg.Threads);
  EC.TimeSource = Cfg.TimeSource;
  return EC;
}

} // namespace

std::vector<SketchPtr>
regel::sketchesForDescription(nlp::SemanticParser &Parser,
                              const std::string &Description,
                              unsigned NumSketches) {
  std::vector<nlp::ScoredSketch> Scored =
      Parser.parse(Description, NumSketches);
  std::vector<SketchPtr> Sketches;
  Sketches.reserve(Scored.size());
  for (nlp::ScoredSketch &S : Scored)
    Sketches.push_back(std::move(S.Sketch));
  if (Sketches.empty())
    Sketches.push_back(Sketch::unconstrained()); // fall back to pure PBE
  return Sketches;
}

engine::JobRequest regel::buildJobRequest(const RegelConfig &Cfg,
                                          std::vector<SketchPtr> Sketches,
                                          const Examples &E) {
  engine::JobRequest R;
  R.Sketches = std::move(Sketches);
  R.E = E;
  R.TopK = Cfg.TopK;
  R.Pri = Cfg.Pri;
  R.BudgetMs = Cfg.BudgetMs;
  R.ResidencyBudgetMs = Cfg.ResidencyBudgetMs;
  R.Synth = Cfg.Synth;
  R.Deterministic = Cfg.Deterministic;
  R.EnqueueCompletion = Cfg.EnqueueCompletion;
  return R;
}

RegelResult Regel::resultFromJob(const engine::JobResult &JR,
                                 std::vector<SketchPtr> Sketches) {
  RegelResult Result;
  Result.Sketches = std::move(Sketches);
  // Synthesis time, not residence time: on a loaded shared engine TotalMs
  // includes queue wait, which is not what SynthMs has always meant.
  Result.SynthMs = JR.ExecMs;
  Result.Answers = JR.Answers; // same type since the RegelAnswer dedup
  return Result;
}

Regel::Regel(std::shared_ptr<nlp::SemanticParser> Parser, RegelConfig Cfg)
    : Parser(std::move(Parser)), Cfg(std::move(Cfg)),
      Svc(std::make_shared<service::LocalService>(
          std::make_shared<engine::Engine>(engineConfigFor(this->Cfg)))) {}

Regel::Regel(std::shared_ptr<nlp::SemanticParser> Parser, RegelConfig Cfg,
             std::shared_ptr<engine::Engine> Eng)
    : Parser(std::move(Parser)), Cfg(std::move(Cfg)),
      Svc(std::make_shared<service::LocalService>(std::move(Eng))) {}

std::vector<SketchPtr>
Regel::sketchesFor(const std::string &Description) const {
  return sketchesForDescription(*Parser, Description, Cfg.NumSketches);
}

RegelResult Regel::synthesize(const std::string &Description,
                              const Examples &E) const {
  Stopwatch ParseWatch;
  std::vector<SketchPtr> Sketches = sketchesFor(Description);
  double ParseMs = ParseWatch.elapsedMs();

  RegelResult Result = synthesizeFromSketches(Sketches, E);
  Result.ParseMs = ParseMs;
  return Result;
}

engine::JobPtr Regel::submit(const std::string &Description,
                             const Examples &E) const {
  return submitSketches(sketchesFor(Description), E);
}

engine::JobPtr Regel::submitSketches(std::vector<SketchPtr> Sketches,
                                     const Examples &E) const {
  return Svc->submitJob(buildJobRequest(Cfg, std::move(Sketches), E));
}

RegelResult Regel::synthesizeFromSketches(
    const std::vector<SketchPtr> &Sketches, const Examples &E) const {
  engine::JobPtr Job = submitSketches(Sketches, E);
  return resultFromJob(Job->wait(), Sketches);
}

std::vector<RegelResult>
Regel::synthesizeBatch(const std::vector<RegelQuery> &Queries) const {
  // Parse every description up front (cheap, single-threaded), then hand
  // the whole batch to the engine so jobs run concurrently.
  std::vector<std::vector<SketchPtr>> SketchLists;
  std::vector<double> ParseTimes;
  SketchLists.reserve(Queries.size());
  ParseTimes.reserve(Queries.size());
  for (const RegelQuery &Q : Queries) {
    Stopwatch ParseWatch;
    SketchLists.push_back(sketchesFor(Q.Description));
    ParseTimes.push_back(ParseWatch.elapsedMs());
  }

  // Completion-driven collection: each job deposits its result through an
  // onComplete continuation (running on the finishing worker — or right
  // here, synchronously, for jobs that completed before registration),
  // and this thread blocks exactly once, until the count drains. Unlike
  // the old wait()-per-job loop, nothing is parked per outstanding job.
  const size_t N = Queries.size();
  // The collector uses the annotated wrapper like every other lock in
  // the tree, so both -Wthread-safety and the lock-discipline analyzer
  // cover it (it was the last function-local std::mutex).
  struct BatchCollector {
    Mutex M;
    std::condition_variable CV;
    size_t Remaining REGEL_GUARDED_BY(M) = 0;
    std::vector<engine::JobResult> Results REGEL_GUARDED_BY(M);
    // CV predicate; runs with M held (the wait re-acquires around it).
    bool donePred() const REGEL_NO_THREAD_SAFETY_ANALYSIS {
      return Remaining == 0;
    }
  };
  BatchCollector C;
  {
    MutexLock Guard(C.M);
    C.Remaining = N;
    C.Results.resize(N);
  }
  for (size_t I = 0; I < N; ++I) {
    engine::JobPtr J =
        Svc->submitJob(buildJobRequest(Cfg, SketchLists[I], Queries[I].E));
    J->onComplete([&C, I](const engine::JobResult &JR) {
      // The notify stays under M: C is stack-local, so the instant the
      // last callback releases the lock the (possibly spuriously woken)
      // waiter can see Remaining==0, return, and destroy C — notifying
      // after the unlock would touch a dead condition_variable.
      MutexLock Guard(C.M);
      C.Results[I] = JR;
      if (--C.Remaining == 0)
        C.CV.notify_all();
    });
  }
  std::vector<engine::JobResult> JobResults;
  {
    UniqueLock Guard(C.M);
    C.CV.wait(Guard.native(), [&C] { return C.donePred(); });
    JobResults = std::move(C.Results);
  }

  std::vector<RegelResult> Results;
  Results.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    RegelResult R = resultFromJob(JobResults[I], std::move(SketchLists[I]));
    R.ParseMs = ParseTimes[I];
    Results.push_back(std::move(R));
  }
  return Results;
}
