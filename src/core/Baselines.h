//===- core/Baselines.h - Evaluation baselines --------------------*- C++ -*-//
//
// Part of the Regel reproduction. The two baselines of Sec. 8.1:
//
//  * RegelPbe  — examples only: the PBE engine started from a completely
//    unconstrained sketch (a single hole).
//  * NlOnly    — natural language only: the best *concrete* parse of the
//    description, ignoring examples. This stands in for DeepRegex (a
//    seq2seq model we cannot train offline); like DeepRegex it is an
//    example-free NL->regex translator. See DESIGN.md, substitution 4.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_CORE_BASELINES_H
#define REGEL_CORE_BASELINES_H

#include "core/Regel.h"

namespace regel {

/// Examples-only baseline: synthesize from the unconstrained sketch.
SynthResult regelPbe(const Examples &E, SynthConfig Cfg);

/// NL-only baseline: the highest-scoring hole-free parse of the
/// description (null when no concrete parse exists).
RegexPtr nlOnlyRegex(const nlp::SemanticParser &Parser,
                     const std::string &Description);

} // namespace regel

#endif // REGEL_CORE_BASELINES_H
