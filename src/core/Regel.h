//===- core/Regel.h - Multi-modal synthesis driver ----------------*- C++ -*-//
//
// Part of the Regel reproduction. The end-to-end tool of Sec. 6: parse the
// English description into a ranked list of h-sketches, run one PBE engine
// instance per sketch (the paper runs 25 in parallel; we iterate them under
// a shared wall-clock budget, optionally on worker threads), and return up
// to k consistent regexes.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_CORE_REGEL_H
#define REGEL_CORE_REGEL_H

#include "nlp/SemanticParser.h"
#include "synth/Synthesizer.h"

#include <memory>

namespace regel {

/// Driver configuration (defaults follow Sec. 6/7).
struct RegelConfig {
  unsigned NumSketches = 25;  ///< sketches taken from the parser
  unsigned TopK = 1;          ///< results shown to the user
  int64_t BudgetMs = 10000;   ///< total time budget t
  SynthConfig Synth;          ///< PBE engine settings (BudgetMs is split)
  unsigned Threads = 1;       ///< PBE instances run on this many workers
};

/// One synthesized result.
struct RegelAnswer {
  RegexPtr Regex;
  unsigned SketchRank;  ///< which sketch produced it (0-based)
  SketchPtr Sketch;
};

/// End-to-end result.
struct RegelResult {
  std::vector<RegelAnswer> Answers; ///< up to TopK, discovery order
  std::vector<SketchPtr> Sketches;  ///< the sketches that were tried
  double ParseMs = 0;
  double SynthMs = 0;

  bool solved() const { return !Answers.empty(); }
};

/// The multi-modal synthesizer.
class Regel {
public:
  /// \p Parser is shared (it carries the trained model weights).
  explicit Regel(std::shared_ptr<nlp::SemanticParser> Parser,
                 RegelConfig Cfg = RegelConfig());

  /// Synthesizes regexes from \p Description and \p E.
  RegelResult synthesize(const std::string &Description,
                         const Examples &E) const;

  /// Runs the PBE engine over an explicit sketch list (used by the
  /// ablation benches, which fix the sketches).
  RegelResult synthesizeFromSketches(const std::vector<SketchPtr> &Sketches,
                                     const Examples &E) const;

  const RegelConfig &config() const { return Cfg; }

private:
  std::shared_ptr<nlp::SemanticParser> Parser;
  RegelConfig Cfg;
};

} // namespace regel

#endif // REGEL_CORE_REGEL_H
