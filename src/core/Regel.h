//===- core/Regel.h - Multi-modal synthesis driver ----------------*- C++ -*-//
//
// Part of the Regel reproduction. The end-to-end tool of Sec. 6: parse the
// English description into a ranked list of h-sketches, run one PBE engine
// instance per sketch (the paper runs 25 in parallel), and return up to k
// consistent regexes. Since the engine rewire, the per-sketch runs execute
// as jobs on a persistent engine::Engine — a shared work-stealing worker
// pool with cross-run caches — instead of ad-hoc threads per request; many
// Regel instances (or a server) can share one engine.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_CORE_REGEL_H
#define REGEL_CORE_REGEL_H

#include "nlp/SemanticParser.h"
#include "synth/Synthesizer.h"

#include <memory>

namespace regel {

namespace engine {
class Engine;
}

/// Driver configuration (defaults follow Sec. 6/7).
struct RegelConfig {
  unsigned NumSketches = 25;  ///< sketches taken from the parser
  unsigned TopK = 1;          ///< results shown to the user
  int64_t BudgetMs = 10000;   ///< total time budget t (execution-anchored)
  SynthConfig Synth;          ///< PBE engine settings (BudgetMs is split)
  unsigned Threads = 1;       ///< workers of a self-owned engine

  /// Submit-anchored SLA per query (0 = none): bounds queue wait plus
  /// execution on a loaded shared engine, where BudgetMs alone lets
  /// residence time grow with the queue. See JobRequest::ResidencyBudgetMs.
  int64_t ResidencyBudgetMs = 0;

  /// Run every sketch to completion and order answers by sketch rank, so
  /// results do not depend on worker count or scheduling (costs the work
  /// cancellation-on-first-success would skip). Scheduling independence
  /// additionally needs deterministic search bounds: BudgetMs = 0 with a
  /// Synth.MaxPops cap, since wall-clock budgets truncate searches at
  /// timing-dependent points.
  bool Deterministic = false;
};

/// One synthesized result.
struct RegelAnswer {
  RegexPtr Regex;
  unsigned SketchRank;  ///< which sketch produced it (0-based)
  SketchPtr Sketch;
};

/// End-to-end result.
struct RegelResult {
  std::vector<RegelAnswer> Answers; ///< up to TopK, discovery order
  std::vector<SketchPtr> Sketches;  ///< the sketches that were tried
  double ParseMs = 0;
  double SynthMs = 0;

  bool solved() const { return !Answers.empty(); }
};

/// One query of a batch request.
struct RegelQuery {
  std::string Description;
  Examples E;
};

/// The multi-modal synthesizer.
class Regel {
public:
  /// \p Parser is shared (it carries the trained model weights). The
  /// driver creates its own engine with Cfg.Threads workers.
  explicit Regel(std::shared_ptr<nlp::SemanticParser> Parser,
                 RegelConfig Cfg = RegelConfig());

  /// Runs on \p Eng instead of a self-owned engine — the serving setup:
  /// one process-wide engine, many drivers/requests (Cfg.Threads is
  /// ignored; the engine's pool decides parallelism).
  Regel(std::shared_ptr<nlp::SemanticParser> Parser, RegelConfig Cfg,
        std::shared_ptr<engine::Engine> Eng);

  /// Synthesizes regexes from \p Description and \p E.
  RegelResult synthesize(const std::string &Description,
                         const Examples &E) const;

  /// Runs the PBE engine over an explicit sketch list (used by the
  /// ablation benches, which fix the sketches).
  RegelResult synthesizeFromSketches(const std::vector<SketchPtr> &Sketches,
                                     const Examples &E) const;

  /// Parses every query, submits all jobs to the engine at once, and
  /// waits for all of them: concurrent queries share the pool and caches
  /// instead of running one-by-one.
  std::vector<RegelResult>
  synthesizeBatch(const std::vector<RegelQuery> &Queries) const;

  const RegelConfig &config() const { return Cfg; }

  /// The engine this driver runs on.
  const std::shared_ptr<engine::Engine> &engine() const { return Eng; }

private:
  std::vector<SketchPtr> sketchesFor(const std::string &Description) const;

  std::shared_ptr<nlp::SemanticParser> Parser;
  RegelConfig Cfg;
  std::shared_ptr<engine::Engine> Eng;
};

} // namespace regel

#endif // REGEL_CORE_REGEL_H
