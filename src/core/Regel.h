//===- core/Regel.h - Multi-modal synthesis driver ----------------*- C++ -*-//
//
// Part of the Regel reproduction. The end-to-end tool of Sec. 6: parse the
// English description into a ranked list of h-sketches, run one PBE engine
// instance per sketch (the paper runs 25 in parallel), and return up to k
// consistent regexes. Since the service rewire, the driver runs on the
// service layer: every Regel owns (or shares) a service::LocalService —
// the SynthService adapter over a persistent engine::Engine — and the
// request-building pipeline (description -> sketches -> JobRequest) is
// exposed as free functions so ticket-based service clients (the socket
// server, the router benches) build byte-for-byte the same jobs the
// blocking driver does. submit() still returns the rich in-process job
// handle (via LocalService::submitJob), so handle-based clients coexist
// with a completion-stream consumer on the same engine.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_CORE_REGEL_H
#define REGEL_CORE_REGEL_H

#include "engine/Job.h"
#include "nlp/SemanticParser.h"
#include "service/LocalService.h"
#include "synth/Synthesizer.h"

#include <memory>

namespace regel {

namespace engine {
class Engine;
}

/// Driver configuration (defaults follow Sec. 6/7).
struct RegelConfig {
  unsigned NumSketches = 25;  ///< sketches taken from the parser
  unsigned TopK = 1;          ///< results shown to the user
  int64_t BudgetMs = 10000;   ///< total time budget t (execution-anchored)
  SynthConfig Synth;          ///< PBE engine settings (BudgetMs is split)
  unsigned Threads = 1;       ///< workers of a self-owned engine

  /// Scheduling class of the submitted jobs on a shared engine: an
  /// interactive query must not sit behind a batch fan-out. See
  /// JobRequest::Pri.
  engine::Priority Pri = engine::Priority::Interactive;

  /// Submit-anchored SLA per query (0 = none): bounds queue wait plus
  /// execution on a loaded shared engine, where BudgetMs alone lets
  /// residence time grow with the queue. See JobRequest::ResidencyBudgetMs.
  int64_t ResidencyBudgetMs = 0;

  /// Forwarded to JobRequest::EnqueueCompletion: finished jobs become
  /// retrievable via Engine::pollCompleted (event-loop clients).
  bool EnqueueCompletion = false;

  /// Time source for a self-owned engine (null = steady clock; ignored
  /// when the driver runs on a shared engine, which brings its own).
  /// Lets a test drive a whole Regel pipeline — budgets, SLAs, timed
  /// waits — on a ManualClock end to end.
  std::shared_ptr<const Clock> TimeSource;

  /// Run every sketch to completion and order answers by sketch rank, so
  /// results do not depend on worker count or scheduling (costs the work
  /// cancellation-on-first-success would skip). Scheduling independence
  /// additionally needs deterministic search bounds: BudgetMs = 0 with a
  /// Synth.MaxPops cap, since wall-clock budgets truncate searches at
  /// timing-dependent points.
  bool Deterministic = false;
};

/// One synthesized result. The engine's answer schema IS the driver's
/// answer schema — one definition (this alias replaced a structurally
/// identical duplicate struct).
using RegelAnswer = engine::JobAnswer;

/// End-to-end result.
struct RegelResult {
  std::vector<RegelAnswer> Answers; ///< up to TopK, discovery order
  std::vector<SketchPtr> Sketches;  ///< the sketches that were tried
  double ParseMs = 0;
  double SynthMs = 0;

  bool solved() const { return !Answers.empty(); }
};

/// One query of a batch request.
struct RegelQuery {
  std::string Description;
  Examples E;
};

/// Parses \p Description into the ranked sketch list a Regel driver
/// searches: up to \p NumSketches parser outputs, falling back to the
/// unconstrained sketch (pure PBE) when parsing yields nothing. This IS
/// the driver's sketch pipeline — the socket server's solve path calls
/// it directly so wire queries and API queries search identical sketch
/// lists.
std::vector<SketchPtr>
sketchesForDescription(nlp::SemanticParser &Parser,
                       const std::string &Description, unsigned NumSketches);

/// Builds the engine request a RegelConfig implies for \p Sketches and
/// \p E (priority, budgets, SLA, determinism, completion flags). Shared
/// by the blocking driver and every service client.
engine::JobRequest buildJobRequest(const RegelConfig &Cfg,
                                   std::vector<SketchPtr> Sketches,
                                   const Examples &E);

/// The multi-modal synthesizer.
class Regel {
public:
  /// \p Parser is shared (it carries the trained model weights). The
  /// driver creates its own engine with Cfg.Threads workers.
  explicit Regel(std::shared_ptr<nlp::SemanticParser> Parser,
                 RegelConfig Cfg = RegelConfig());

  /// Runs on \p Eng instead of a self-owned engine — the serving setup:
  /// one process-wide engine, many drivers/requests (Cfg.Threads is
  /// ignored; the engine's pool decides parallelism).
  Regel(std::shared_ptr<nlp::SemanticParser> Parser, RegelConfig Cfg,
        std::shared_ptr<engine::Engine> Eng);

  /// Synthesizes regexes from \p Description and \p E (blocking).
  RegelResult synthesize(const std::string &Description,
                         const Examples &E) const;

  /// Runs the PBE engine over an explicit sketch list (used by the
  /// ablation benches, which fix the sketches). Blocking.
  RegelResult synthesizeFromSketches(const std::vector<SketchPtr> &Sketches,
                                     const Examples &E) const;

  /// Async entry point: parses \p Description and submits one job without
  /// blocking on the result. The returned handle drives the engine's
  /// completion API (onComplete / waitFor / Engine::pollCompleted when
  /// Cfg.EnqueueCompletion is set); pair with resultFromJob to recover a
  /// RegelResult. Parsing runs on the calling thread (it is cheap next to
  /// synthesis); only the PBE search is deferred to the engine.
  engine::JobPtr submit(const std::string &Description,
                        const Examples &E) const;

  /// Submits an explicit sketch list without blocking (see submit).
  engine::JobPtr submitSketches(std::vector<SketchPtr> Sketches,
                                const Examples &E) const;

  /// Converts a completed job's result into the driver's result type.
  /// \p Sketches is the list the job was submitted with.
  static RegelResult resultFromJob(const engine::JobResult &JR,
                                   std::vector<SketchPtr> Sketches);

  /// Parses every query, submits all jobs to the engine at once, and
  /// collects them through completion continuations: concurrent queries
  /// share the pool and caches, and no thread is parked per job — the
  /// caller blocks once, on the last completion.
  std::vector<RegelResult>
  synthesizeBatch(const std::vector<RegelQuery> &Queries) const;

  const RegelConfig &config() const { return Cfg; }

  /// The engine this driver runs on.
  const std::shared_ptr<engine::Engine> &engine() const {
    return Svc->engine();
  }

  /// The driver's service adapter: hand this to a SocketServer or a
  /// RouterService to serve ticket-based clients from the same engine
  /// (respecting the adapter's single-consumer completion contract).
  const std::shared_ptr<service::LocalService> &service() const {
    return Svc;
  }

private:
  std::vector<SketchPtr> sketchesFor(const std::string &Description) const;

  std::shared_ptr<nlp::SemanticParser> Parser;
  RegelConfig Cfg;
  std::shared_ptr<service::LocalService> Svc;
};

} // namespace regel

#endif // REGEL_CORE_REGEL_H
