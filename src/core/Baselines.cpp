//===- core/Baselines.cpp -------------------------------------------------===//

#include "core/Baselines.h"

using namespace regel;

SynthResult regel::regelPbe(const Examples &E, SynthConfig Cfg) {
  Synthesizer Engine(std::move(Cfg));
  return Engine.run(Sketch::unconstrained(), E);
}

RegexPtr regel::nlOnlyRegex(const nlp::SemanticParser &Parser,
                            const std::string &Description) {
  // Take the best-scoring root whose sketch is fully concrete: that is the
  // parser's direct "translation" of the description into a regex.
  //
  // A sequence-to-sequence translator (the system this baseline stands in
  // for) consumes the whole sentence; it has no notion of skipping words.
  // Our chart parser does skip, so to keep the baseline honest we reject
  // "translations" whose derivation ignored most of the input — those are
  // sketch-style readings, not translations.
  std::vector<nlp::Token> Tokens = nlp::tokenize(Description);
  if (Tokens.empty())
    return nullptr;
  std::vector<nlp::Derivation> Roots = Parser.parseDerivations(Description);
  uint32_t SkipFeature = Parser.featureSpace().skipFeature();
  for (const nlp::Derivation &D : Roots) {
    SketchPtr S = D.Val.asSketch();
    if (!S)
      continue;
    RegexPtr R;
    if (S->getKind() == SketchKind::Concrete)
      R = S->regex();
    else if (S->getKind() == SketchKind::Hole &&
             S->components().size() == 1 &&
             S->components()[0]->getKind() == SketchKind::Concrete)
      R = S->components()[0]->regex(); // single-component hole: direct too
    if (!R)
      continue;
    double Skipped = 0;
    for (const auto &[Id, Val] : D.Features)
      if (Id == SkipFeature)
        Skipped = Val;
    if (Skipped > 0.65 * static_cast<double>(Tokens.size()))
      continue;
    return R;
  }
  return nullptr;
}
