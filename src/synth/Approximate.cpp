//===- synth/Approximate.cpp ----------------------------------------------===//

#include "synth/Approximate.h"

#include "regex/Matcher.h"

using namespace regel;

RegexPtr regel::topRegex() {
  static const RegexPtr Top =
      Regex::kleeneStar(Regex::charClass(CharClass::any()));
  return Top;
}

RegexPtr regel::botRegex() {
  static const RegexPtr Bot = Regex::emptySet();
  return Bot;
}

namespace {

bool isTop(const RegexPtr &R) { return regexEquals(R, topRegex()); }
bool isBot(const RegexPtr &R) { return R->getKind() == RegexKind::EmptySet; }

/// Operator application with top/bottom simplification; keeping the
/// approximation regexes small keeps their DFAs (and the cache) small.
RegexPtr mkOp(RegexKind K, std::vector<RegexPtr> Kids,
              const std::vector<int> &Ints = {}) {
  switch (K) {
  case RegexKind::Concat:
    if (isBot(Kids[0]) || isBot(Kids[1]))
      return botRegex();
    if (isTop(Kids[0]) && isTop(Kids[1]))
      return topRegex();
    if (Kids[0]->getKind() == RegexKind::Epsilon)
      return Kids[1];
    if (Kids[1]->getKind() == RegexKind::Epsilon)
      return Kids[0];
    break;
  case RegexKind::Or:
    if (isBot(Kids[0]))
      return Kids[1];
    if (isBot(Kids[1]))
      return Kids[0];
    if (isTop(Kids[0]) || isTop(Kids[1]))
      return topRegex();
    break;
  case RegexKind::And:
    if (isBot(Kids[0]) || isBot(Kids[1]))
      return botRegex();
    if (isTop(Kids[0]))
      return Kids[1];
    if (isTop(Kids[1]))
      return Kids[0];
    break;
  case RegexKind::Not:
    if (isBot(Kids[0]))
      return topRegex();
    if (isTop(Kids[0]))
      return botRegex();
    break;
  case RegexKind::Optional:
    if (isBot(Kids[0]))
      return Regex::epsilon();
    if (isTop(Kids[0]))
      return topRegex();
    break;
  case RegexKind::KleeneStar:
    if (isBot(Kids[0]))
      return Regex::epsilon();
    if (isTop(Kids[0]))
      return topRegex();
    break;
  case RegexKind::StartsWith:
  case RegexKind::EndsWith:
  case RegexKind::Contains:
    if (isBot(Kids[0]))
      return botRegex();
    if (isTop(Kids[0]))
      return topRegex();
    break;
  case RegexKind::Repeat:
  case RegexKind::RepeatAtLeast:
  case RegexKind::RepeatRange:
    if (isBot(Kids[0]))
      return botRegex();
    if (isTop(Kids[0]))
      return topRegex();
    break;
  default:
    break;
  }
  return Regex::makeOperator(K, std::move(Kids), Ints);
}

} // namespace

namespace {

Approx approximateSketchUncached(const SketchPtr &S, unsigned Depth,
                                 bool WithClasses, SketchApproxStore *Memo) {
  switch (S->getKind()) {
  case SketchKind::Concrete:
    // Rule (7): a concrete regex approximates itself.
    return {S->regex(), S->regex()};

  case SketchKind::Op: {
    RegexKind K = S->getOp();
    if (isRepeatFamily(K)) {
      Approx A = approximateSketch(S->children()[0], Depth, false, Memo);
      if (!S->ints().empty()) {
        // Concrete integers: rule (4) of Fig. 11 applies precisely.
        std::vector<int> Ints = S->ints();
        return {mkOp(K, {A.Over}, Ints), mkOp(K, {A.Under}, Ints)};
      }
      // Rule (6): symbolic integers; only "at least one copy" is certain.
      return {mkOp(RegexKind::RepeatAtLeast, {A.Over}, {1}), botRegex()};
    }
    if (K == RegexKind::Not) {
      // Rule (5): negation swaps the approximations.
      Approx A = approximateSketch(S->children()[0], Depth, false, Memo);
      return {mkOp(RegexKind::Not, {A.Under}), mkOp(RegexKind::Not, {A.Over})};
    }
    // Rule (4): apply the operator componentwise.
    std::vector<RegexPtr> Overs, Unders;
    for (const SketchPtr &C : S->children()) {
      Approx A = approximateSketch(C, Depth, false, Memo);
      Overs.push_back(A.Over);
      Unders.push_back(A.Under);
    }
    return {mkOp(K, std::move(Overs)), mkOp(K, std::move(Unders))};
  }

  case SketchKind::Hole: {
    // Rule (3): deep holes approximate to (top, bottom).
    if (Depth > 1 || (S->components().empty() && !WithClasses))
      return {topRegex(), botRegex()};
    // Depth-1 holes: union of component overs / intersection of component
    // unders (rules 1-2). The widened variant contributes every character
    // class: <any> to the over side, bottom to the under side.
    RegexPtr Over = botRegex();
    RegexPtr Under;
    bool First = true;
    for (const SketchPtr &C : S->components()) {
      Approx A = approximateSketch(C, Depth, false, Memo);
      Over = mkOp(RegexKind::Or, {Over, A.Over});
      Under = First ? A.Under : mkOp(RegexKind::And, {Under, A.Under});
      First = false;
    }
    if (WithClasses) {
      Over = mkOp(RegexKind::Or,
                  {Over, Regex::charClass(CharClass::any())});
      Under = botRegex();
    }
    if (First && !WithClasses) // no components at all
      return {topRegex(), botRegex()};
    if (!Under)
      Under = botRegex();
    return {Over, Under};
  }
  }
  assert(false && "unknown sketch kind");
  return {topRegex(), botRegex()};
}

} // namespace

Approx regel::approximateSketch(const SketchPtr &S, unsigned Depth,
                                bool WithClasses, SketchApproxStore *Memo) {
  // Concrete leaves are trivial; consulting the store for them would only
  // bloat it.
  if (!Memo || S->getKind() == SketchKind::Concrete)
    return approximateSketchUncached(S, Depth, WithClasses, Memo);
  Approx A;
  if (Memo->lookup(S, Depth, WithClasses, A))
    return A;
  A = approximateSketchUncached(S, Depth, WithClasses, Memo);
  Memo->publish(S, Depth, WithClasses, A);
  return A;
}

Approx regel::approximatePartial(const PNodePtr &N, SketchApproxStore *Memo) {
  switch (N->getKind()) {
  case PLabelKind::LeafLabel:
    return {N->leaf(), N->leaf()};

  case PLabelKind::SketchLabel:
    // Rule (1) of Fig. 11 defers to the sketch judgement.
    return approximateSketch(N->sketch(), N->sketchDepth(),
                             N->sketchWithClasses(), Memo);

  case PLabelKind::OpLabel: {
    RegexKind K = N->op();
    if (isRepeatFamily(K)) {
      Approx A = approximatePartial(N->children()[0], Memo);
      // Rule (4) vs rule (5): precise when all integer slots are assigned.
      bool AllConcrete = true;
      std::vector<int> Ints;
      for (unsigned I = 0; I < numIntArgs(K); ++I) {
        const PNodePtr &C = N->children()[numRegexArgs(K) + I];
        if (C->getKind() == PLabelKind::IntLabel) {
          Ints.push_back(C->intValue());
        } else {
          AllConcrete = false;
          break;
        }
      }
      if (AllConcrete)
        return {mkOp(K, {A.Over}, Ints), mkOp(K, {A.Under}, Ints)};
      return {mkOp(RegexKind::RepeatAtLeast, {A.Over}, {1}), botRegex()};
    }
    if (K == RegexKind::Not) {
      Approx A = approximatePartial(N->children()[0], Memo);
      return {mkOp(RegexKind::Not, {A.Under}), mkOp(RegexKind::Not, {A.Over})};
    }
    std::vector<RegexPtr> Overs, Unders;
    for (unsigned I = 0; I < numRegexArgs(K); ++I) {
      Approx A = approximatePartial(N->children()[I], Memo);
      Overs.push_back(A.Over);
      Unders.push_back(A.Under);
    }
    return {mkOp(K, std::move(Overs)), mkOp(K, std::move(Unders))};
  }

  case PLabelKind::SymIntLabel:
  case PLabelKind::IntLabel:
    break;
  }
  assert(false && "integer slots are handled by their operator");
  return {topRegex(), botRegex()};
}

bool FeasibilityChecker::overAcceptsAllPos(const RegexPtr &Over) {
  auto [It, Inserted] = OverVerdict.try_emplace(Over->hash(), true);
  if (Inserted) {
    if (Cache) {
      It->second = Cache->acceptsAll(Over, E.Pos);
    } else {
      DirectMatcher M(Over);
      for (const std::string &S : E.Pos)
        if (!M.matches(S)) {
          It->second = false;
          break;
        }
    }
  }
  return It->second;
}

bool FeasibilityChecker::underRejectsAllNeg(const RegexPtr &Under) {
  auto [It, Inserted] = UnderVerdict.try_emplace(Under->hash(), true);
  if (Inserted) {
    if (Cache) {
      It->second = Cache->rejectsAll(Under, E.Neg);
    } else {
      DirectMatcher M(Under);
      for (const std::string &S : E.Neg)
        if (M.matches(S)) {
          It->second = false;
          break;
        }
    }
  }
  return It->second;
}

bool FeasibilityChecker::infeasible(const PartialRegex &P) {
  ++Checks;
  Approx A = approximatePartial(P.root(), Memo);
  // The over-approximation must accept every positive example.
  if (!isTop(A.Over) && !E.Pos.empty() && !overAcceptsAllPos(A.Over))
    return true;
  // The under-approximation must reject every negative example.
  if (!isBot(A.Under) && !E.Neg.empty() && !underRejectsAllNeg(A.Under))
    return true;
  return false;
}

bool regel::infeasible(const PartialRegex &P, const Examples &E,
                       DfaCache &Cache) {
  (void)Cache;
  FeasibilityChecker Checker(E);
  return Checker.infeasible(P);
}
