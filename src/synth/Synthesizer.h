//===- synth/Synthesizer.h - Sketch-guided PBE engine (Fig. 9) --*- C++ -*-===//
//
// Part of the Regel reproduction. The Synthesize worklist algorithm:
// expand open nodes (Fig. 10), prune with over/under-approximations
// (Sec. 4.1), concretize symbolic integers with SMT-guided inference
// (Sec. 4.2), and check concrete candidates against the examples (with the
// subsumption heuristics of Sec. 6).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_SYNTHESIZER_H
#define REGEL_SYNTH_SYNTHESIZER_H

#include "automata/Compile.h"
#include "synth/Config.h"
#include "synth/PartialRegex.h"

#include <string>
#include <vector>

namespace regel {

/// Counters for one synthesis run (reported by benches and tests).
struct SynthStats {
  uint64_t Pops = 0;
  uint64_t Expansions = 0;
  uint64_t PrunedInfeasible = 0;
  uint64_t ConcreteChecked = 0;
  uint64_t SubsumptionSkips = 0;

  // SMT accounting, split by what actually ran (see InferStats):
  // interval sweeps are the cheap per-node pruning oracle, solves are
  // bounded DFS model searches, cache hits are solve() calls answered by
  // the shared verdict store without a search. (The pre-split "smt_calls"
  // aggregate is gone; read the split fields.)
  uint64_t SmtIntervalEvals = 0;
  uint64_t SmtSolves = 0;
  uint64_t SmtCacheHits = 0;
  uint64_t SmtUnsatShortCircuits = 0;
  uint64_t InferIterations = 0;

  // End-to-end DFA resolution for this run: how the run's DFA needs were
  // met. DfaGets = DfaLocalHits + shared-store hits + DfaCompiles; the
  // compile count is what a bounded shared store actually costs, since a
  // re-looked-up evicted entry turns into a compile, not a failure.
  uint64_t DfaGets = 0;      ///< requests against the run-local cache
  uint64_t DfaLocalHits = 0; ///< served without consulting the store
  uint64_t DfaSharedHits = 0; ///< local misses served by the shared store
  uint64_t DfaCompiles = 0;  ///< full compilations this run paid
  double TimeMs = 0;
};

/// Outcome of one synthesis run.
struct SynthResult {
  /// Consistent regexes, in discovery order (up to TopK).
  std::vector<RegexPtr> Solutions;
  SynthStats Stats;
  bool TimedOut = false;   ///< Stopped by the time budget / pop cap.
  bool Cancelled = false;  ///< Stopped through SynthConfig::CancelFlag.
  bool Exhausted = false;  ///< Worklist ran dry.

  bool solved() const { return !Solutions.empty(); }
};

/// The sketch-guided PBE engine. One instance per synthesis task (it owns a
/// DFA cache that persists across candidate checks within the run).
class Synthesizer {
public:
  explicit Synthesizer(SynthConfig Cfg = SynthConfig());

  /// Runs the Fig. 9 algorithm on sketch \p S and examples \p E.
  SynthResult run(const SketchPtr &S, const Examples &E);

  /// The regex->DFA cache (exposed so drivers can share/reset it).
  DfaCache &cache() { return Cache; }

  const SynthConfig &config() const { return Cfg; }

private:
  bool checkConcrete(const RegexPtr &R, const Examples &E, SynthStats &Stats);

  SynthConfig Cfg;
  DfaCache Cache;

  /// Subsumption memos (Sec. 6), reset per run: bodies r for which
  /// Contains(r) failed a positive example, and the smallest k for which
  /// RepeatAtLeast(r, k) failed.
  std::unordered_map<RegexPtr, char, RegexPtrHash, RegexPtrEq> ContainsFailed;
  std::unordered_map<RegexPtr, int, RegexPtrHash, RegexPtrEq> AtLeastFailed;
};

} // namespace regel

#endif // REGEL_SYNTH_SYNTHESIZER_H
