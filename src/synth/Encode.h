//===- synth/Encode.h - Length encoding of symbolic regexes (Fig. 13) -*-C++-*-
//
// Part of the Regel reproduction. Encodes a symbolic regex as a constraint
// on its symbolic integers: for each AST node we derive a small union of
// symbolic intervals [lo(k), hi(k)] bounding the length of any string the
// node can match. Substituting the length of a positive example yields the
// necessary condition the SMT solver prunes with (Sec. 4.2). Compared to
// Fig. 13 this performs the existential-variable elimination eagerly (the
// inner x_i variables never reach the solver), using Min/Max terms where
// the paper's encoding would existentially quantify; the result is still a
// sound necessary condition (Theorem 10.4's property is preserved, see
// tests/synth/EncodeTest.cpp).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_ENCODE_H
#define REGEL_SYNTH_ENCODE_H

#include "smt/Formula.h"
#include "synth/PartialRegex.h"

namespace regel {

/// A symbolic length interval; bounds are terms over the kappa variables.
struct SymInterval {
  smt::TermPtr Lo;
  smt::TermPtr Hi;
};

/// A union of symbolic intervals (capped; overflow merges into the hull).
using SymIntervalSet = std::vector<SymInterval>;

/// Derives the length abstraction of a symbolic (or concrete) partial
/// regex. Symbolic integer kappa_i maps to smt variable id i.
SymIntervalSet encodeLengths(const PNodePtr &N, size_t Cap = 6);

/// Constraint "a string of length Len can be matched": the disjunction of
/// lo <= Len <= hi over the interval set.
smt::FormulaPtr lengthMembership(const SymIntervalSet &Set, int64_t Len);

} // namespace regel

#endif // REGEL_SYNTH_ENCODE_H
