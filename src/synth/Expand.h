//===- synth/Expand.h - Worklist expansion (Fig. 10) ------------*- C++ -*-===//
//
// Part of the Regel reproduction. Implements the Expand judgement
// v : S |- P ~> Pi of Fig. 10: rewriting one open (sketch-labelled) node of
// a partial regex into the set of its one-step refinements.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_EXPAND_H
#define REGEL_SYNTH_EXPAND_H

#include "synth/Config.h"
#include "synth/PartialRegex.h"

namespace regel {

/// Expands the open node of \p P at \p Path per the Fig. 10 rules.
/// \p Classes is the character-class pool C used by rule 2; when
/// Cfg.UseSymbolic is false, Repeat-family integers are enumerated in
/// [1, Cfg.MaxInt] instead of becoming symbolic.
std::vector<PartialRegex> expandNode(const PartialRegex &P,
                                     const NodePath &Path,
                                     const SynthConfig &Cfg,
                                     const std::vector<CharClass> &Classes);

} // namespace regel

#endif // REGEL_SYNTH_EXPAND_H
