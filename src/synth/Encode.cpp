//===- synth/Encode.cpp ---------------------------------------------------===//

#include "synth/Encode.h"

using namespace regel;
using smt::Term;
using smt::TermPtr;

namespace {

TermPtr zero() { return Term::constant(0); }
TermPtr one() { return Term::constant(1); }
TermPtr inf() { return Term::infinity(); }

/// Collapses a set into its hull [min lo, max hi]; empty stays empty.
SymInterval hull(const SymIntervalSet &Set) {
  assert(!Set.empty() && "hull of empty set");
  TermPtr Lo = Set[0].Lo;
  TermPtr Hi = Set[0].Hi;
  for (size_t I = 1; I < Set.size(); ++I) {
    Lo = Term::min(Lo, Set[I].Lo);
    Hi = Term::max(Hi, Set[I].Hi);
  }
  return {Lo, Hi};
}

/// Caps a set's cardinality by merging into the hull.
SymIntervalSet capped(SymIntervalSet Set, size_t Cap) {
  if (Set.size() <= Cap)
    return Set;
  return {hull(Set)};
}

/// The length abstraction of a concrete regex (no symbolic integers);
/// shares all the operator logic below via the generic node walker, so we
/// translate the regex into interval sets directly.
SymIntervalSet encodeRegex(const Regex *R, size_t Cap);

SymIntervalSet concatSets(const SymIntervalSet &A, const SymIntervalSet &B,
                          size_t Cap) {
  SymIntervalSet Out;
  for (const SymInterval &X : A)
    for (const SymInterval &Y : B)
      Out.push_back({Term::add(X.Lo, Y.Lo), Term::add(X.Hi, Y.Hi)});
  return capped(std::move(Out), Cap);
}

SymIntervalSet unionSets(SymIntervalSet A, const SymIntervalSet &B,
                         size_t Cap) {
  A.insert(A.end(), B.begin(), B.end());
  return capped(std::move(A), Cap);
}

SymIntervalSet intersectSets(const SymIntervalSet &A, const SymIntervalSet &B,
                             size_t Cap) {
  SymIntervalSet Out;
  for (const SymInterval &X : A)
    for (const SymInterval &Y : B)
      Out.push_back({Term::max(X.Lo, Y.Lo), Term::min(X.Hi, Y.Hi)});
  return capped(std::move(Out), Cap);
}

/// Applies a repetition with multiplicity bounds [KLo, KHi] (terms).
SymIntervalSet repeatSet(const SymIntervalSet &A, TermPtr KLo, TermPtr KHi,
                         size_t Cap) {
  if (A.empty())
    return {};
  SymInterval H = hull(A);
  (void)Cap;
  return {{Term::mul(H.Lo, std::move(KLo)), Term::mul(H.Hi, std::move(KHi))}};
}

/// Shared operator logic, parameterized over already-encoded children and
/// the integer-slot terms (constants or kappa variables).
SymIntervalSet encodeOp(RegexKind K, const std::vector<SymIntervalSet> &Kids,
                        const std::vector<TermPtr> &Ints, size_t Cap) {
  switch (K) {
  case RegexKind::StartsWith:
  case RegexKind::EndsWith:
  case RegexKind::Contains: {
    // Fig. 13: x >= x1 (the rest of the string is unconstrained).
    if (Kids[0].empty())
      return {};
    return {{hull(Kids[0]).Lo, inf()}};
  }
  case RegexKind::Not:
    // Fig. 13: true — nothing can be said from lengths alone.
    return {{zero(), inf()}};
  case RegexKind::Optional: {
    SymIntervalSet Out = Kids[0];
    Out.push_back({zero(), zero()});
    return capped(std::move(Out), Cap);
  }
  case RegexKind::KleeneStar: {
    if (Kids[0].empty())
      return {{zero(), zero()}};
    SymIntervalSet Out{{zero(), zero()}, {hull(Kids[0]).Lo, inf()}};
    return Out;
  }
  case RegexKind::Concat:
    if (Kids[0].empty() || Kids[1].empty())
      return {};
    return concatSets(Kids[0], Kids[1], Cap);
  case RegexKind::Or:
    return unionSets(Kids[0], Kids[1], Cap);
  case RegexKind::And:
    if (Kids[0].empty() || Kids[1].empty())
      return {};
    return intersectSets(Kids[0], Kids[1], Cap);
  case RegexKind::Repeat:
    if (Kids[0].empty())
      return {};
    return repeatSet(Kids[0], Ints[0], Ints[0], Cap);
  case RegexKind::RepeatAtLeast: {
    if (Kids[0].empty())
      return {};
    SymInterval H = hull(Kids[0]);
    return {{Term::mul(H.Lo, Ints[0]), inf()}};
  }
  case RegexKind::RepeatRange:
    if (Kids[0].empty())
      return {};
    return repeatSet(Kids[0], Ints[0], Ints[1], Cap);
  default:
    break;
  }
  assert(false && "not an operator");
  return {};
}

SymIntervalSet encodeRegex(const Regex *R, size_t Cap) {
  switch (R->getKind()) {
  case RegexKind::CharClassLeaf:
    return {{one(), one()}};
  case RegexKind::Epsilon:
    return {{zero(), zero()}};
  case RegexKind::EmptySet:
    return {};
  default: {
    std::vector<SymIntervalSet> Kids;
    for (const RegexPtr &C : R->children())
      Kids.push_back(encodeRegex(C.get(), Cap));
    std::vector<TermPtr> Ints;
    if (isRepeatFamily(R->getKind())) {
      Ints.push_back(Term::constant(R->getK1()));
      if (R->getKind() == RegexKind::RepeatRange)
        Ints.push_back(Term::constant(R->getK2()));
    }
    return encodeOp(R->getKind(), Kids, Ints, Cap);
  }
  }
}

} // namespace

SymIntervalSet regel::encodeLengths(const PNodePtr &N, size_t Cap) {
  switch (N->getKind()) {
  case PLabelKind::LeafLabel:
    return encodeRegex(N->leaf().get(), Cap);
  case PLabelKind::OpLabel: {
    RegexKind K = N->op();
    std::vector<SymIntervalSet> Kids;
    for (unsigned I = 0; I < numRegexArgs(K); ++I)
      Kids.push_back(encodeLengths(N->children()[I], Cap));
    std::vector<TermPtr> Ints;
    for (unsigned I = 0; I < numIntArgs(K); ++I) {
      const PNodePtr &C = N->children()[numRegexArgs(K) + I];
      if (C->getKind() == PLabelKind::IntLabel)
        Ints.push_back(Term::constant(C->intValue()));
      else
        Ints.push_back(Term::var(C->symInt()));
    }
    return encodeOp(K, Kids, Ints, Cap);
  }
  case PLabelKind::SketchLabel:
    // Open nodes can match anything (InferConstants only sees symbolic
    // regexes, but be total for robustness).
    return {{zero(), inf()}};
  case PLabelKind::SymIntLabel:
  case PLabelKind::IntLabel:
    break;
  }
  assert(false && "integer slots are handled by their operator");
  return {{zero(), inf()}};
}

smt::FormulaPtr regel::lengthMembership(const SymIntervalSet &Set,
                                        int64_t Len) {
  using smt::Formula;
  std::vector<smt::FormulaPtr> Parts;
  TermPtr L = Term::constant(Len);
  for (const SymInterval &I : Set)
    Parts.push_back(Formula::conj(
        {Formula::ge(L, I.Lo), Formula::le(L, I.Hi)}));
  return Formula::disj(std::move(Parts));
}
