//===- synth/Expand.cpp ---------------------------------------------------===//

#include "synth/Expand.h"

using namespace regel;

std::vector<CharClass> SynthConfig::defaultClasses() {
  return {CharClass::num(), CharClass::let(),      CharClass::low(),
          CharClass::cap(), CharClass::any(),      CharClass::alphaNum(),
          CharClass::spec()};
}

namespace {

/// Operators without integer parameters (the F sets of Fig. 10).
/// Contains precedes StartsWith/EndsWith so that the Sec. 6 subsumption
/// heuristic (Contains failure implies StartsWith/EndsWith failure) sees
/// the weakest query first.
constexpr RegexKind FOps[] = {
    RegexKind::Contains,   RegexKind::StartsWith, RegexKind::EndsWith,
    RegexKind::Not,        RegexKind::Optional,   RegexKind::KleeneStar,
    RegexKind::Concat,     RegexKind::Or,         RegexKind::And,
};

/// Operators with integer parameters (the G sets of Fig. 10).
constexpr RegexKind GOps[] = {
    RegexKind::Repeat,
    RegexKind::RepeatAtLeast,
    RegexKind::RepeatRange,
};

/// Builds the node for a component of a hole / an operator child: concrete
/// sketches become leaves immediately (saving a worklist round-trip).
PNodePtr nodeForSketch(const SketchPtr &S, unsigned Depth, bool WithClasses) {
  if (S->getKind() == SketchKind::Concrete)
    return PNode::leafNode(S->regex());
  return PNode::sketchNode(S, Depth, WithClasses);
}

/// Appends integer-slot children for operator \p G. In symbolic mode each
/// slot is a fresh symbolic integer; otherwise the caller enumerates.
void appendSymbolicInts(std::vector<PNodePtr> &Kids, RegexKind G,
                        uint32_t &NextSym) {
  for (unsigned I = 0; I < numIntArgs(G); ++I)
    Kids.push_back(PNode::symIntNode(NextSym++));
}

/// Emits every expansion of operator \p G with explicitly enumerated
/// integer parameters (the Regel-Enum / Regel-Approx ablation path).
template <typename EmitFn>
void enumerateInts(RegexKind G, int MaxInt, PNodePtr Child, EmitFn Emit) {
  if (G == RegexKind::RepeatRange) {
    for (int K1 = 1; K1 <= MaxInt; ++K1)
      for (int K2 = K1; K2 <= MaxInt; ++K2)
        Emit(PNode::opNode(
            G, {Child, PNode::intNode(K1), PNode::intNode(K2)}));
    return;
  }
  for (int K = 1; K <= MaxInt; ++K)
    Emit(PNode::opNode(G, {Child, PNode::intNode(K)}));
}

/// True when wrapping a child of \p Parent with operator \p Child yields a
/// regex that is always equivalent to a smaller one the search generates
/// anyway. Pruning these (cf. AlphaRegex's redundant-state elimination)
/// keeps completeness w.r.t. regular languages while shrinking the search
/// space substantially:
///   - containment inside containment (StartsWith(Contains(r)) etc.)
///     collapses to a single containment operator;
///   - Optional/KleeneStar stacking collapses (Optional(Optional(r)),
///     KleeneStar(Optional(r)), ...);
///   - Not(Not(r)) = r.
bool isRedundantNesting(RegexKind Parent, RegexKind Child) {
  auto IsContain = [](RegexKind K) {
    return K == RegexKind::StartsWith || K == RegexKind::EndsWith ||
           K == RegexKind::Contains;
  };
  if (IsContain(Parent) && IsContain(Child))
    return true;
  auto IsEpsClosure = [](RegexKind K) {
    return K == RegexKind::Optional || K == RegexKind::KleeneStar;
  };
  if (IsEpsClosure(Parent) && IsEpsClosure(Child))
    return true;
  if (Parent == RegexKind::Not && Child == RegexKind::Not)
    return true;
  return false;
}

} // namespace

std::vector<PartialRegex> regel::expandNode(
    const PartialRegex &P, const NodePath &Path, const SynthConfig &Cfg,
    const std::vector<CharClass> &Classes) {
  // Operator kind of the parent node (for redundancy pruning below).
  RegexKind ParentOp = RegexKind::CharClassLeaf; // sentinel: no parent op
  if (!Path.empty()) {
    NodePath ParentPath(Path.begin(), Path.end() - 1);
    const PNode *Parent = P.nodeAt(ParentPath);
    if (Parent->getKind() == PLabelKind::OpLabel)
      ParentOp = Parent->op();
  }
  const PNode *V = P.nodeAt(Path);
  assert(V->getKind() == PLabelKind::SketchLabel && "expanding non-open node");
  const SketchPtr &S = V->sketch();
  unsigned Depth = V->sketchDepth();
  bool WithClasses = V->sketchWithClasses();

  std::vector<PartialRegex> Out;
  uint32_t BaseSym = P.numSymInts();

  auto emit = [&](PNodePtr NewNode, uint32_t NumSym) {
    Out.push_back(P.replaceAt(Path, std::move(NewNode), NumSym));
  };

  switch (S->getKind()) {
  case SketchKind::Concrete:
    emit(PNode::leafNode(S->regex()), BaseSym);
    return Out;

  case SketchKind::Op: {
    // Rules (3) and (4): instantiate the operator, labelling children with
    // the component sketches (same depth budget).
    RegexKind K = S->getOp();
    std::vector<PNodePtr> Kids;
    for (const SketchPtr &C : S->children())
      Kids.push_back(nodeForSketch(C, Depth, /*WithClasses=*/false));
    if (numIntArgs(K) == 0) {
      emit(PNode::opNode(K, std::move(Kids)), BaseSym);
      return Out;
    }
    if (!S->ints().empty()) {
      // Concrete integers recorded in the sketch.
      for (int I : S->ints())
        Kids.push_back(PNode::intNode(I));
      emit(PNode::opNode(K, std::move(Kids)), BaseSym);
      return Out;
    }
    if (Cfg.UseSymbolic) {
      uint32_t NextSym = BaseSym;
      appendSymbolicInts(Kids, K, NextSym);
      emit(PNode::opNode(K, std::move(Kids)), NextSym);
      return Out;
    }
    PNodePtr Child = Kids[0];
    enumerateInts(K, Cfg.MaxInt, Child,
                  [&](PNodePtr N) { emit(std::move(N), BaseSym); });
    return Out;
  }

  case SketchKind::Hole: {
    const std::vector<SketchPtr> &Comps = S->components();

    // Pi1: fill the hole with one of its components; when the component
    // set was widened (rule 2's l'), every character class is a candidate
    // as well.
    for (const SketchPtr &C : Comps)
      emit(nodeForSketch(C, Depth, /*WithClasses=*/false), BaseSym);
    if (WithClasses)
      for (const CharClass &CC : Classes)
        emit(PNode::leafNode(Regex::charClass(CC)), BaseSym);

    if (Depth <= 1)
      return Out;

    // Pi2: grow an operator without integer parameters. One child keeps
    // the original component obligation; the others get the widened hole.
    SketchPtr HoleAgain = S; // same components, depth-1 budget
    for (RegexKind F : FOps) {
      if (isRedundantNesting(ParentOp, F))
        continue;
      unsigned N = numRegexArgs(F);
      for (unsigned Chosen = 0; Chosen < N; ++Chosen) {
        std::vector<PNodePtr> Kids;
        for (unsigned I = 0; I < N; ++I)
          Kids.push_back(PNode::sketchNode(
              HoleAgain, Depth - 1,
              /*WithClasses=*/I == Chosen ? WithClasses : true));
        emit(PNode::opNode(F, std::move(Kids)), BaseSym);
      }
    }

    // Pi3: grow a Repeat-family operator; the regex child keeps the
    // obligation and the integer slots become symbolic (or enumerated).
    for (RegexKind G : GOps) {
      PNodePtr Child = PNode::sketchNode(HoleAgain, Depth - 1, WithClasses);
      if (Cfg.UseSymbolic) {
        std::vector<PNodePtr> Kids{Child};
        uint32_t NextSym = BaseSym;
        appendSymbolicInts(Kids, G, NextSym);
        emit(PNode::opNode(G, std::move(Kids)), NextSym);
      } else {
        enumerateInts(G, Cfg.MaxInt, Child,
                      [&](PNodePtr N) { emit(std::move(N), BaseSym); });
      }
    }
    return Out;
  }
  }
  assert(false && "unknown sketch kind");
  return Out;
}
