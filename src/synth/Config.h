//===- synth/Config.h - PBE engine configuration ----------------*- C++ -*-===//
//
// Part of the Regel reproduction. Tuning knobs of the synthesis algorithm,
// including the ablation toggles evaluated in Fig. 18:
//   UseApprox=false, UseSymbolic=false   -> Regel-Enum
//   UseApprox=true,  UseSymbolic=false   -> Regel-Approx
//   UseApprox=true,  UseSymbolic=true    -> Regel (full)
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_CONFIG_H
#define REGEL_SYNTH_CONFIG_H

#include "regex/CharClass.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace regel {

class Clock;
class DfaStore;
class SketchApproxStore;

namespace smt {
class VerdictStore;
}

namespace obs {
struct SynthProbe;
}

/// Configuration of one Synthesize run.
struct SynthConfig {
  /// Hole depth budget d (Sec. 3.2 remark: a configurable parameter of the
  /// implementation, not part of parser output).
  unsigned HoleDepth = 3;

  /// Upper bound MAX for integer parameters of the Repeat family.
  int MaxInt = 20;

  /// Wall-clock budget in milliseconds (0 = unlimited).
  int64_t BudgetMs = 0;

  /// Stop after this many consistent regexes have been found.
  unsigned TopK = 1;

  /// Enable over/under-approximation pruning (Sec. 4.1).
  bool UseApprox = true;

  /// Enable symbolic integers + SMT-based inference (Sec. 4.2); when false,
  /// integer parameters are enumerated explicitly during expansion.
  bool UseSymbolic = true;

  /// Enable the membership-query subsumption heuristics (Sec. 6).
  bool UseSubsumption = true;

  /// Augment the character-class pool with singleton classes for every
  /// character that occurs in the examples.
  bool AddLiteralsFromExamples = true;

  /// Hard cap on worklist pops (0 = unlimited); a safety valve for the
  /// enumerative ablations.
  uint64_t MaxPops = 0;

  /// DFS node budget per SMT solve call (0 = unlimited). Bounds each of
  /// the per-example and joint satisfiability checks InferConstants runs
  /// before enumerating; a budget-out is treated as "unknown" and the
  /// enumeration proceeds (soundness never depends on a solve finishing).
  uint64_t SmtNodeBudget = 20000;

  /// Cap on InferConstants worklist iterations per symbolic regex.
  uint64_t MaxInferIters = 4000;

  /// Cap on concrete candidates emitted per InferConstants call (ascending
  /// constant order, so small intended constants are found first).
  uint64_t MaxInferResults = 48;

  /// Cooperative cancellation: when set, the run stops (reporting TimedOut)
  /// as soon as the flag becomes true. The engine uses this to cancel
  /// sibling sketch tasks once a job has enough answers.
  const std::atomic<bool> *CancelFlag = nullptr;

  /// Time source for BudgetMs and TimeMs (nullptr = steady clock, owned
  /// by the caller and outliving the run). The engine passes its clock so
  /// a search's wall budget expires on the same — possibly virtual —
  /// timeline as the job's deadline and residency SLA.
  const Clock *TimeSource = nullptr;

  /// Cross-run regex->DFA store consulted/filled by this run's DfaCache
  /// (thread-safe, owned by the engine; nullptr = run-local caching only).
  /// The store may be bounded: publish is keep-or-drop and a previously
  /// stored DFA can be evicted between lookups, in which case the run just
  /// recompiles it — correctness never depends on an entry staying put.
  DfaStore *SharedDfa = nullptr;

  /// Cross-run sketch-approximation memo (thread-safe, owned by the
  /// engine; nullptr = recompute per run). Like SharedDfa, the memo may
  /// evict: a missing approximation is recomputed, deterministically.
  SketchApproxStore *SharedApprox = nullptr;

  /// Cross-run SMT verdict store (thread-safe, owned by the engine;
  /// nullptr = every satisfiability check solves from scratch). Attached
  /// to InferConstants' solver sessions; like the other stores it is
  /// bounded and advisory — an evicted verdict is just re-solved
  /// (solving is deterministic, including the model found).
  smt::VerdictStore *SharedSmt = nullptr;

  /// Instrumentation sinks (owned by the engine, outliving the run like
  /// TimeSource; nullptr = no instrumentation): DFA-compile and SMT-
  /// inference latency histograms plus the job's span trace. See
  /// obs/Probe.h.
  const obs::SynthProbe *Probe = nullptr;

  /// Character classes available to hole expansion (Fig. 10 rule 2's C).
  /// Empty selects the default pool (num/let/low/cap/any/alphanum/spec).
  std::vector<CharClass> Classes;

  /// The default class pool.
  static std::vector<CharClass> defaultClasses();
};

} // namespace regel

#endif // REGEL_SYNTH_CONFIG_H
