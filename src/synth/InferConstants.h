//===- synth/InferConstants.h - SMT-guided constant inference (Fig. 14) -*-===//
//
// Part of the Regel reproduction. Instantiates the symbolic integers of a
// symbolic regex with concrete constants, using the length encoding as an
// over-approximate constraint, model enumeration with blocking clauses,
// and partial-assignment feasibility checks (Sec. 4.2, footnote 4).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_INFERCONSTANTS_H
#define REGEL_SYNTH_INFERCONSTANTS_H

#include "support/Timer.h"
#include "synth/Approximate.h"
#include "synth/Config.h"
#include "synth/PartialRegex.h"

namespace regel {

/// Counters reported by inferConstants.
struct InferStats {
  uint64_t SolveCalls = 0;
  uint64_t Iterations = 0;
  uint64_t PrunedPartialAssignments = 0;
  bool HitIterationCap = false;
};

/// Returns every concrete instantiation of \p P0's symbolic integers that
/// survives the length constraints and partial-assignment feasibility
/// checks (Theorem 4.7: every consistent concretization is included).
/// The results still need a full example-consistency check by the caller.
std::vector<RegexPtr> inferConstants(const PartialRegex &P0,
                                     const Examples &E,
                                     const SynthConfig &Cfg,
                                     FeasibilityChecker &Checker,
                                     InferStats &Stats,
                                     const Deadline *Budget = nullptr);

} // namespace regel

#endif // REGEL_SYNTH_INFERCONSTANTS_H
