//===- synth/InferConstants.h - SMT-guided constant inference (Fig. 14) -*-===//
//
// Part of the Regel reproduction. Instantiates the symbolic integers of a
// symbolic regex with concrete constants, using the length encoding as an
// over-approximate constraint, model enumeration with blocking clauses,
// and partial-assignment feasibility checks (Sec. 4.2, footnote 4).
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_INFERCONSTANTS_H
#define REGEL_SYNTH_INFERCONSTANTS_H

#include "support/Timer.h"
#include "synth/Approximate.h"
#include "synth/Config.h"
#include "synth/PartialRegex.h"

namespace regel {

/// Counters reported by inferConstants.
///
/// The old single `SolveCalls` figure conflated two very different
/// operations; it is now split so the numbers mean what they say:
///   IntervalEvals — three-valued interval sweeps over the constraint
///                   set (microseconds each, one per enumeration node);
///   SmtSolves     — DFS model searches actually executed by the
///                   bounded solver (the expensive operation, and the
///                   one the verdict cache elides).
/// solveCalls() keeps the legacy sum for one release; see
/// docs/OBSERVABILITY.md for the deprecation schedule.
struct InferStats {
  uint64_t IntervalEvals = 0;
  uint64_t SmtSolves = 0;

  /// Satisfiability checks answered by the attached verdict store
  /// (exact hits and Unsat-implication hits alike); disjoint from
  /// SmtSolves.
  uint64_t SmtCacheHits = 0;

  /// Enumerations abandoned up front because a per-example or joint
  /// length check came back Unsat.
  uint64_t UnsatShortCircuits = 0;

  uint64_t Iterations = 0;
  uint64_t PrunedPartialAssignments = 0;
  bool HitIterationCap = false;

  /// DEPRECATED: the pre-split aggregate (interval evals + solves).
  /// Remove after one release; read the split fields instead.
  uint64_t solveCalls() const { return IntervalEvals + SmtSolves; }
};

/// Returns every concrete instantiation of \p P0's symbolic integers that
/// survives the length constraints and partial-assignment feasibility
/// checks (Theorem 4.7: every consistent concretization is included).
/// The results still need a full example-consistency check by the caller.
std::vector<RegexPtr> inferConstants(const PartialRegex &P0,
                                     const Examples &E,
                                     const SynthConfig &Cfg,
                                     FeasibilityChecker &Checker,
                                     InferStats &Stats,
                                     const Deadline *Budget = nullptr);

} // namespace regel

#endif // REGEL_SYNTH_INFERCONSTANTS_H
