//===- synth/Synthesizer.cpp ----------------------------------------------===//

#include "synth/Synthesizer.h"

#include "obs/Metrics.h"
#include "obs/Probe.h"
#include "obs/Trace.h"
#include "regex/Matcher.h"
#include "support/Clock.h"
#include "support/Timer.h"
#include "synth/Approximate.h"
#include "synth/Expand.h"
#include "synth/InferConstants.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <unordered_set>

using namespace regel;

namespace {

/// Search-cost of one node. Negation/intersection are heavily penalized:
/// they rarely occur in intended regexes, and deprioritizing them both
/// speeds up the search and ranks natural solutions first.
unsigned nodeWeight(const PNodePtr &N) {
  switch (N->getKind()) {
  case PLabelKind::SketchLabel:
    return 2;
  case PLabelKind::LeafLabel:
    return N->leaf()->size();
  case PLabelKind::SymIntLabel:
  case PLabelKind::IntLabel:
    return 0;
  case PLabelKind::OpLabel:
    switch (N->op()) {
    case RegexKind::Not:
      return 8;
    case RegexKind::And:
      return 4;
    case RegexKind::KleeneStar:
      return 2;
    default:
      return 1;
    }
  }
  return 1;
}

unsigned costOf(const PNodePtr &N) {
  unsigned Total = nodeWeight(N);
  for (const PNodePtr &C : N->children())
    Total += costOf(C);
  return Total;
}

} // namespace

Synthesizer::Synthesizer(SynthConfig Cfg) : Cfg(std::move(Cfg)) {
  if (this->Cfg.Classes.empty())
    this->Cfg.Classes = SynthConfig::defaultClasses();
}

bool Synthesizer::checkConcrete(const RegexPtr &R, const Examples &E,
                                SynthStats &Stats) {
  ++Stats.ConcreteChecked;
  if (Cfg.UseSubsumption) {
    // Contains(r) failing a positive example implies StartsWith(r) and
    // EndsWith(r) fail one as well (Sec. 6).
    RegexKind K = R->getKind();
    if (K == RegexKind::StartsWith || K == RegexKind::EndsWith ||
        K == RegexKind::Contains) {
      if (ContainsFailed.count(R->getChild(0))) {
        ++Stats.SubsumptionSkips;
        return false;
      }
    }
    // RepeatAtLeast(r, k) failing the positives is monotone in k.
    if (K == RegexKind::RepeatAtLeast) {
      auto It = AtLeastFailed.find(R->getChild(0));
      if (It != AtLeastFailed.end() && R->getK1() >= It->second) {
        ++Stats.SubsumptionSkips;
        return false;
      }
    }
  }

  // Concrete candidates are mostly distinct, so compiling a DFA for each
  // would defeat the cache; the memoized direct matcher is cheaper on the
  // short example strings.
  DirectMatcher Matcher(R);
  bool AllPos = true;
  for (const std::string &S : E.Pos)
    if (!Matcher.matches(S)) {
      AllPos = false;
      break;
    }
  if (!AllPos) {
    if (Cfg.UseSubsumption) {
      if (R->getKind() == RegexKind::Contains)
        ContainsFailed.emplace(R->getChild(0), 1);
      if (R->getKind() == RegexKind::RepeatAtLeast) {
        auto It = AtLeastFailed.find(R->getChild(0));
        if (It == AtLeastFailed.end() || R->getK1() < It->second)
          AtLeastFailed[R->getChild(0)] = R->getK1();
      }
    }
    return false;
  }
  for (const std::string &S : E.Neg)
    if (Matcher.matches(S))
      return false;
  return true;
}

SynthResult Synthesizer::run(const SketchPtr &S, const Examples &E) {
  SynthResult Result;
  Stopwatch Watch(Cfg.TimeSource);
  Deadline Budget(Cfg.BudgetMs, Cfg.CancelFlag, Cfg.TimeSource);
  // Delta-based so a reused Synthesizer (persistent Cache) reports only
  // this run's DFA traffic.
  const uint64_t CacheHits0 = Cache.hits();
  const uint64_t CacheMisses0 = Cache.misses();
  const uint64_t CacheShared0 = Cache.sharedHits();
  ContainsFailed.clear();
  AtLeastFailed.clear();
  // Instrumentation: DFA compilations pay their timing through the cache;
  // SMT inference is timed around each inferConstants call below. The
  // probe's clock times spans on the same (possibly virtual) timeline as
  // the search budget.
  Cache.setProbe(Cfg.Probe);
  const bool TimeSmt =
      Cfg.Probe && Cfg.Probe->Clk &&
      (Cfg.Probe->SmtInferUs || Cfg.Probe->Trace);
  FeasibilityChecker Checker(E);
  Checker.setApproxMemo(Cfg.SharedApprox);
  if (Cfg.SharedDfa) {
    // With a cross-run DFA store attached, feasibility checks route their
    // membership queries through the cache so approximation DFAs (heavily
    // repeated across sketches and jobs) are compiled once per process.
    // Only sound when every example lies in the DFA alphabet: on chars
    // outside [MinAlphabetChar, MaxAlphabetChar] the DFA rejects
    // unconditionally while the direct matcher complements through Not,
    // and a disagreement on an over-approximation would prune feasible
    // candidates.
    Cache.setSharedStore(Cfg.SharedDfa);
    auto inAlphabet = [](const std::vector<std::string> &Strs) {
      for (const std::string &S : Strs)
        for (char C : S) {
          unsigned char U = static_cast<unsigned char>(C);
          if (U < MinAlphabetChar || U > MaxAlphabetChar)
            return false;
        }
      return true;
    };
    if (inAlphabet(E.Pos) && inAlphabet(E.Neg))
      Checker.setDfaCache(&Cache);
  }

  // Augment the class pool with punctuation/symbol literals from the
  // examples so constants like <.> or <-> are reachable by pure search.
  // Alphanumerics are deliberately excluded: they are covered by the
  // predefined classes and would blow up the branching factor.
  std::vector<CharClass> Classes = Cfg.Classes;
  if (Cfg.AddLiteralsFromExamples) {
    std::unordered_set<char> Seen;
    auto addChars = [&](const std::vector<std::string> &Strs) {
      for (const std::string &Str : Strs)
        for (char C : Str) {
          unsigned char U = static_cast<unsigned char>(C);
          if (U < MinAlphabetChar || U > MaxAlphabetChar)
            continue;
          if (std::isalnum(U))
            continue;
          if (Seen.insert(C).second)
            Classes.push_back(CharClass::singleton(C));
        }
    };
    addChars(E.Pos);
    addChars(E.Neg);
  }

  // Priority worklist: smaller partial regexes (with a penalty per open
  // node) first; FIFO among equals keeps the search breadth-first-ish.
  struct QItem {
    unsigned Cost;
    uint64_t Seq;
    PartialRegex P;
  };
  struct QCmp {
    bool operator()(const QItem &A, const QItem &B) const {
      if (A.Cost != B.Cost)
        return A.Cost > B.Cost;
      return A.Seq > B.Seq;
    }
  };
  std::priority_queue<QItem, std::vector<QItem>, QCmp> Worklist;
  uint64_t Seq = 0;
  auto push = [&](PartialRegex P) {
    unsigned Cost = costOf(P.root());
    Worklist.push({Cost, Seq++, std::move(P)});
  };

  // Structural dedup of emitted solutions.
  std::unordered_set<size_t> SolutionHashes;
  bool Done = false;

  auto recordIfSolution = [&](RegexPtr R) {
    if (!checkConcrete(R, E, Result.Stats))
      return;
    if (!SolutionHashes.insert(R->hash()).second)
      return;
    Result.Solutions.push_back(std::move(R));
    if (Result.Solutions.size() >= Cfg.TopK)
      Done = true;
  };

  // Structural dedup of queued partials (symmetric expansions can produce
  // identical trees through different paths).
  std::unordered_set<size_t> SeenPartials;

  // Concrete partials are checked immediately (the check is cheap and
  // order-insensitive); open and symbolic partials are queued so the cost
  // ordering decides which symbolic regexes get constant inference first.
  auto process = [&](PartialRegex P) {
    if (P.isConcrete()) {
      recordIfSolution(P.toRegex());
      return;
    }
    if (SeenPartials.insert(P.root()->hash()).second)
      push(std::move(P));
  };

  process(PartialRegex::initial(S, Cfg.HoleDepth));

  while (!Worklist.empty() && !Done) {
    if (Budget.expired() || (Cfg.MaxPops && Result.Stats.Pops >= Cfg.MaxPops)) {
      Result.TimedOut = true;
      Result.Cancelled = Budget.cancelled();
      break;
    }
    unsigned PopCost = Worklist.top().Cost;
    PartialRegex P = Worklist.top().P;
    Worklist.pop();
    ++Result.Stats.Pops;
    if (getenv("REGEL_TRACE") && Result.Stats.Pops <= 400)
      fprintf(stderr, "pop %llu cost=%u %s\n",
              (unsigned long long)Result.Stats.Pops, PopCost,
              P.str().c_str());

    if (P.isSymbolic()) {
      // SMT-guided inference of the integer constants (Sec. 4.2). Timed
      // as one unit: the thousands of individual solver formula
      // evaluations inside are far too frequent to time one by one.
      InferStats IS;
      const int64_t SmtStartUs = TimeSmt ? Cfg.Probe->Clk->nowUs() : 0;
      std::vector<RegexPtr> Concrete =
          inferConstants(P, E, Cfg, Checker, IS, &Budget);
      if (TimeSmt) {
        const int64_t SmtDurUs = Cfg.Probe->Clk->nowUs() - SmtStartUs;
        if (Cfg.Probe->SmtInferUs)
          Cfg.Probe->SmtInferUs->record(static_cast<uint64_t>(SmtDurUs));
        if (Cfg.Probe->Trace) {
          obs::Span S;
          S.Name = "smt_infer";
          S.Cat = "smt";
          S.StartUs = SmtStartUs;
          S.DurUs = SmtDurUs;
          S.Tid = Cfg.Probe->Tid;
          S.Args = {{"interval_evals", std::to_string(IS.IntervalEvals)},
                    {"solves", std::to_string(IS.SmtSolves)},
                    {"cache_hits", std::to_string(IS.SmtCacheHits)},
                    {"iterations", std::to_string(IS.Iterations)},
                    {"results", std::to_string(Concrete.size())}};
          Cfg.Probe->Trace->span(std::move(S));
        }
      }
      Result.Stats.SmtIntervalEvals += IS.IntervalEvals;
      Result.Stats.SmtSolves += IS.SmtSolves;
      Result.Stats.SmtCacheHits += IS.SmtCacheHits;
      Result.Stats.SmtUnsatShortCircuits += IS.UnsatShortCircuits;
      Result.Stats.InferIterations += IS.Iterations;
      for (RegexPtr &R : Concrete) {
        recordIfSolution(std::move(R));
        if (Done)
          break;
      }
      continue;
    }

    // Expand one open node (Fig. 9 lines 10-14).
    auto Path = P.selectOpenNode();
    assert(Path && "worklist elements always have an open node");
    std::vector<PartialRegex> Expanded = expandNode(P, *Path, Cfg, Classes);
    Result.Stats.Expansions += Expanded.size();
    for (PartialRegex &PPrime : Expanded) {
      // For concrete candidates the approximations coincide with the
      // candidate itself, so Infeasible would duplicate the final check;
      // route them straight to checkConcrete (where the Sec. 6 subsumption
      // heuristics apply).
      if (!PPrime.isConcrete() && Cfg.UseApprox &&
          Checker.infeasible(PPrime)) {
        ++Result.Stats.PrunedInfeasible;
        continue;
      }
      process(std::move(PPrime));
      if (Done)
        break;
    }
  }

  Result.Exhausted = Worklist.empty() && !Result.TimedOut &&
                     Result.Solutions.size() < Cfg.TopK;
  Result.Stats.DfaLocalHits = Cache.hits() - CacheHits0;
  Result.Stats.DfaSharedHits = Cache.sharedHits() - CacheShared0;
  const uint64_t Misses = Cache.misses() - CacheMisses0;
  Result.Stats.DfaGets = Result.Stats.DfaLocalHits + Misses;
  Result.Stats.DfaCompiles = Misses - Result.Stats.DfaSharedHits;
  Result.Stats.TimeMs = Watch.elapsedMs();
  return Result;
}
