//===- synth/Approximate.h - Over/under-approximation (Figs. 11/12) -*-C++-*-//
//
// Part of the Regel reproduction. Computes, for a partial regex P, a pair
// of concrete regexes (o, u) such that
//   (1) every string matched by some completion of P is matched by o, and
//   (2) every string matched by u is matched by every completion of P.
// A partial regex is infeasible (and can be pruned) when o rejects a
// positive example or u accepts a negative example.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_APPROXIMATE_H
#define REGEL_SYNTH_APPROXIMATE_H

#include "automata/Compile.h"
#include "synth/PartialRegex.h"

namespace regel {

/// An over/under-approximation pair.
struct Approx {
  RegexPtr Over;
  RegexPtr Under;
};

/// Top element: KleeneStar(<any>) accepts every string.
RegexPtr topRegex();

/// Bottom element: the empty language.
RegexPtr botRegex();

/// Memo a sketch approximation may consult: (sketch, depth, widened) is
/// example-independent, so its approximation can be shared across synthesis
/// runs, jobs, and threads. Implementations must be thread-safe (the
/// concurrent engine provides a sharded one, see engine/Caches.h).
class SketchApproxStore {
public:
  virtual ~SketchApproxStore() = default;

  /// Returns true and fills \p Out when a stored approximation exists.
  virtual bool lookup(const SketchPtr &S, unsigned Depth, bool WithClasses,
                      Approx &Out) = 0;

  /// Offers a freshly computed approximation to the store.
  virtual void publish(const SketchPtr &S, unsigned Depth, bool WithClasses,
                       const Approx &A) = 0;
};

/// Approximates an h-sketch under depth budget \p Depth (Fig. 12);
/// \p WithClasses marks the widened hole variant (its under-approximation
/// collapses to bottom). With \p Memo set, every sketch node consulted
/// during the recursion is served from / published to the store.
Approx approximateSketch(const SketchPtr &S, unsigned Depth, bool WithClasses,
                         SketchApproxStore *Memo = nullptr);

/// Approximates a partial regex (Fig. 11).
Approx approximatePartial(const PNodePtr &N,
                          SketchApproxStore *Memo = nullptr);

/// The Infeasible check of Fig. 9 line 13 with verdict memoization:
/// returns true when the approximations prove a partial regex cannot be
/// completed consistently with the examples. One instance per synthesis
/// run; sibling expansions share most of their approximations, so the
/// per-regex verdicts (over accepts all positives / under rejects all
/// negatives) are cached by structural hash.
class FeasibilityChecker {
public:
  explicit FeasibilityChecker(const Examples &E) : E(E) {}

  /// Attaches a cross-run sketch-approximation memo (may be nullptr).
  void setApproxMemo(SketchApproxStore *M) { Memo = M; }

  /// Routes membership queries for the (heavily repeated) approximation
  /// regexes through \p C instead of the direct matcher; with a shared
  /// backing store attached to the cache, their DFAs amortize across runs.
  void setDfaCache(DfaCache *C) { Cache = C; }

  /// True when \p P is provably inconsistent with the examples.
  bool infeasible(const PartialRegex &P);

  uint64_t checksRun() const { return Checks; }

private:
  bool overAcceptsAllPos(const RegexPtr &Over);
  bool underRejectsAllNeg(const RegexPtr &Under);

  const Examples &E;
  SketchApproxStore *Memo = nullptr;
  DfaCache *Cache = nullptr;
  std::unordered_map<size_t, bool> OverVerdict;
  std::unordered_map<size_t, bool> UnderVerdict;
  uint64_t Checks = 0;
};

/// Convenience single-shot form (used by tests).
bool infeasible(const PartialRegex &P, const Examples &E, DfaCache &Cache);

} // namespace regel

#endif // REGEL_SYNTH_APPROXIMATE_H
