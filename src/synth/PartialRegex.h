//===- synth/PartialRegex.h - Partial regexes (Def. 4.1) --------*- C++ -*-===//
//
// Part of the Regel reproduction. A partial regex is an AST whose nodes are
// labelled with (1) a DSL construct, (2) a symbolic integer, or (3) an
// h-sketch (Def. 4.1). Sketch labels additionally carry the remaining hole
// depth budget and whether the component set was widened with all character
// classes (the l' label of Fig. 10, rule 2).
//
// Trees are persistent (shared immutable nodes); expansion rebuilds only
// the spine from the root to the rewritten node.
//
//===----------------------------------------------------------------------===//

#ifndef REGEL_SYNTH_PARTIALREGEX_H
#define REGEL_SYNTH_PARTIALREGEX_H

#include "sketch/Sketch.h"

#include <optional>
#include <string>
#include <vector>

namespace regel {

/// Positive/negative example specification for one synthesis task.
struct Examples {
  std::vector<std::string> Pos;
  std::vector<std::string> Neg;

  /// Length of the longest example string (used to bound automata work).
  size_t maxLength() const;
};

enum class PLabelKind : uint8_t {
  SketchLabel, ///< Open node to expand (h-sketch + depth budget).
  OpLabel,     ///< DSL operator; children are regex args then int slots.
  LeafLabel,   ///< Fully concrete sub-regex.
  SymIntLabel, ///< Unassigned symbolic integer kappa.
  IntLabel,    ///< Assigned integer constant.
};

class PNode;
using PNodePtr = std::shared_ptr<const PNode>;

/// One node of a partial regex.
class PNode {
public:
  PLabelKind getKind() const { return Kind; }

  const SketchPtr &sketch() const {
    assert(Kind == PLabelKind::SketchLabel);
    return Sk;
  }
  unsigned sketchDepth() const {
    assert(Kind == PLabelKind::SketchLabel);
    return Depth;
  }
  /// True when this open node's hole components were widened with every
  /// character class (Fig. 10 rule 2's l' label).
  bool sketchWithClasses() const {
    assert(Kind == PLabelKind::SketchLabel);
    return WithClasses;
  }

  RegexKind op() const {
    assert(Kind == PLabelKind::OpLabel);
    return Op;
  }
  const RegexPtr &leaf() const {
    assert(Kind == PLabelKind::LeafLabel);
    return Leaf;
  }
  uint32_t symInt() const {
    assert(Kind == PLabelKind::SymIntLabel);
    return Sym;
  }
  int intValue() const {
    assert(Kind == PLabelKind::IntLabel);
    return Value;
  }

  const std::vector<PNodePtr> &children() const { return Children; }

  /// Structural hash (cached at construction).
  size_t hash() const { return Hash; }

  static PNodePtr sketchNode(SketchPtr S, unsigned Depth, bool WithClasses);
  static PNodePtr opNode(RegexKind Op, std::vector<PNodePtr> Children);
  static PNodePtr leafNode(RegexPtr R);
  static PNodePtr symIntNode(uint32_t Id);
  static PNodePtr intNode(int Value);

private:
  PNode(PLabelKind Kind, SketchPtr Sk, unsigned Depth, bool WithClasses,
        RegexKind Op, RegexPtr Leaf, uint32_t Sym, int Value,
        std::vector<PNodePtr> Children)
      : Kind(Kind), Sk(std::move(Sk)), Depth(Depth), WithClasses(WithClasses),
        Op(Op), Leaf(std::move(Leaf)), Sym(Sym), Value(Value),
        Children(std::move(Children)) {
    size_t H = static_cast<size_t>(Kind) * 0x9e3779b97f4a7c15ull;
    if (this->Sk)
      H ^= this->Sk->hash() + (static_cast<size_t>(Depth) << 3) +
           (WithClasses ? 0x5bd1e995u : 0u);
    H ^= static_cast<size_t>(Op) * 0x85ebca6b;
    if (this->Leaf)
      H ^= this->Leaf->hash() * 0xc2b2ae35;
    H ^= (static_cast<size_t>(Sym) << 17) ^
         (static_cast<size_t>(static_cast<unsigned>(Value)) << 5);
    for (const PNodePtr &C : this->Children)
      H ^= C->hash() + 0x9e3779b9 + (H << 6) + (H >> 2);
    Hash = H;
  }

  PLabelKind Kind;
  SketchPtr Sk;
  unsigned Depth = 0;
  bool WithClasses = false;
  RegexKind Op = RegexKind::Concat;
  RegexPtr Leaf;
  uint32_t Sym = 0;
  int Value = 0;
  std::vector<PNodePtr> Children;
  size_t Hash = 0;
};

/// Path from the root: sequence of child indices.
using NodePath = std::vector<unsigned>;

/// A partial regex (persistent tree + symbolic-integer bookkeeping).
class PartialRegex {
public:
  PartialRegex() = default;
  explicit PartialRegex(PNodePtr Root, uint32_t NumSymInts = 0)
      : Root(std::move(Root)), NumSymInts(NumSymInts) {}

  /// Builds the initial worklist element (v0 labelled with the sketch).
  static PartialRegex initial(SketchPtr S, unsigned DepthBudget);

  const PNodePtr &root() const { return Root; }
  uint32_t numSymInts() const { return NumSymInts; }

  bool isConcrete() const;  ///< All labels are DSL constructs/constants.
  bool isSymbolic() const;  ///< No sketch labels but >=1 symbolic integer.
  bool hasOpenNode() const; ///< At least one sketch label.

  /// Leftmost open (sketch-labelled) node, if any.
  std::optional<NodePath> selectOpenNode() const;

  /// Leftmost unassigned symbolic-integer node, if any; also reports its
  /// kappa id via \p SymIdOut.
  std::optional<NodePath> selectSymInt(uint32_t &SymIdOut) const;

  const PNode *nodeAt(const NodePath &Path) const;

  /// Functional update: new tree with \p Path's subtree replaced.
  PartialRegex replaceAt(const NodePath &Path, PNodePtr NewNode,
                         uint32_t NewNumSymInts) const;

  /// Substitutes integer \p Value for symbolic integer \p SymId everywhere.
  PartialRegex assignSymInt(uint32_t SymId, int Value) const;

  /// Converts to a concrete regex; requires isConcrete().
  RegexPtr toRegex() const;

  /// Number of nodes (search-cost metric).
  unsigned size() const;

  /// Number of open (sketch) nodes.
  unsigned numOpenNodes() const;

  /// Diagnostic rendering.
  std::string str() const;

private:
  PNodePtr Root;
  uint32_t NumSymInts = 0;
};

} // namespace regel

#endif // REGEL_SYNTH_PARTIALREGEX_H
