//===- synth/PartialRegex.cpp ---------------------------------------------===//

#include "synth/PartialRegex.h"

#include "regex/Printer.h"

#include <algorithm>

using namespace regel;

size_t Examples::maxLength() const {
  size_t M = 0;
  for (const std::string &S : Pos)
    M = std::max(M, S.size());
  for (const std::string &S : Neg)
    M = std::max(M, S.size());
  return M;
}

PNodePtr PNode::sketchNode(SketchPtr S, unsigned Depth, bool WithClasses) {
  assert(S && "null sketch label");
  return PNodePtr(new PNode(PLabelKind::SketchLabel, std::move(S), Depth,
                            WithClasses, RegexKind::Concat, nullptr, 0, 0,
                            {}));
}

PNodePtr PNode::opNode(RegexKind Op, std::vector<PNodePtr> Children) {
  assert(Children.size() == numRegexArgs(Op) + numIntArgs(Op) &&
         "operator node child-count mismatch");
  return PNodePtr(new PNode(PLabelKind::OpLabel, nullptr, 0, false, Op,
                            nullptr, 0, 0, std::move(Children)));
}

PNodePtr PNode::leafNode(RegexPtr R) {
  assert(R && "null leaf regex");
  return PNodePtr(new PNode(PLabelKind::LeafLabel, nullptr, 0, false,
                            RegexKind::Concat, std::move(R), 0, 0, {}));
}

PNodePtr PNode::symIntNode(uint32_t Id) {
  return PNodePtr(new PNode(PLabelKind::SymIntLabel, nullptr, 0, false,
                            RegexKind::Concat, nullptr, Id, 0, {}));
}

PNodePtr PNode::intNode(int Value) {
  assert(Value >= 1 && "Repeat-family integers are positive");
  return PNodePtr(new PNode(PLabelKind::IntLabel, nullptr, 0, false,
                            RegexKind::Concat, nullptr, 0, Value, {}));
}

PartialRegex PartialRegex::initial(SketchPtr S, unsigned DepthBudget) {
  bool Unconstrained = S->getKind() == SketchKind::Hole &&
                       S->components().empty();
  return PartialRegex(
      PNode::sketchNode(std::move(S), DepthBudget, Unconstrained), 0);
}

namespace {

bool anyNode(const PNodePtr &N, PLabelKind K) {
  if (N->getKind() == K)
    return true;
  for (const PNodePtr &C : N->children())
    if (anyNode(C, K))
      return true;
  return false;
}

bool findFirst(const PNodePtr &N, PLabelKind K, NodePath &Path,
               const PNode *&Found) {
  if (N->getKind() == K) {
    Found = N.get();
    return true;
  }
  for (unsigned I = 0; I < N->children().size(); ++I) {
    Path.push_back(I);
    if (findFirst(N->children()[I], K, Path, Found))
      return true;
    Path.pop_back();
  }
  return false;
}

unsigned countNodes(const PNodePtr &N) {
  unsigned Total = 1;
  for (const PNodePtr &C : N->children())
    Total += countNodes(C);
  return Total;
}

unsigned countKind(const PNodePtr &N, PLabelKind K) {
  unsigned Total = N->getKind() == K ? 1 : 0;
  for (const PNodePtr &C : N->children())
    Total += countKind(C, K);
  return Total;
}

PNodePtr rebuild(const PNodePtr &N, const NodePath &Path, size_t Idx,
                 const PNodePtr &NewNode) {
  if (Idx == Path.size())
    return NewNode;
  assert(N->getKind() == PLabelKind::OpLabel && "path through non-op node");
  std::vector<PNodePtr> Kids = N->children();
  assert(Path[Idx] < Kids.size() && "path index out of range");
  Kids[Path[Idx]] = rebuild(Kids[Path[Idx]], Path, Idx + 1, NewNode);
  return PNode::opNode(N->op(), std::move(Kids));
}

PNodePtr substSymInt(const PNodePtr &N, uint32_t SymId, int Value,
                     bool &Changed) {
  if (N->getKind() == PLabelKind::SymIntLabel && N->symInt() == SymId) {
    Changed = true;
    return PNode::intNode(Value);
  }
  if (N->children().empty())
    return N;
  std::vector<PNodePtr> Kids = N->children();
  bool Local = false;
  for (PNodePtr &K : Kids)
    K = substSymInt(K, SymId, Value, Local);
  if (!Local)
    return N;
  Changed = true;
  assert(N->getKind() == PLabelKind::OpLabel && "children imply op node");
  return PNode::opNode(N->op(), std::move(Kids));
}

RegexPtr nodeToRegex(const PNodePtr &N) {
  switch (N->getKind()) {
  case PLabelKind::LeafLabel:
    return N->leaf();
  case PLabelKind::OpLabel: {
    RegexKind K = N->op();
    std::vector<RegexPtr> Rs;
    std::vector<int> Ints;
    for (unsigned I = 0; I < numRegexArgs(K); ++I)
      Rs.push_back(nodeToRegex(N->children()[I]));
    for (unsigned I = 0; I < numIntArgs(K); ++I) {
      const PNodePtr &C = N->children()[numRegexArgs(K) + I];
      assert(C->getKind() == PLabelKind::IntLabel && "unassigned integer");
      Ints.push_back(C->intValue());
    }
    return Regex::makeOperator(K, std::move(Rs), Ints);
  }
  default:
    assert(false && "node is not concrete");
    return nullptr;
  }
}

std::string nodeStr(const PNodePtr &N) {
  switch (N->getKind()) {
  case PLabelKind::SketchLabel:
    return "[" + printSketch(N->sketch()) + "@" +
           std::to_string(N->sketchDepth()) +
           (N->sketchWithClasses() ? "+C" : "") + "]";
  case PLabelKind::LeafLabel:
    return printRegex(N->leaf());
  case PLabelKind::SymIntLabel:
    return "k" + std::to_string(N->symInt());
  case PLabelKind::IntLabel:
    return std::to_string(N->intValue());
  case PLabelKind::OpLabel: {
    std::string Out = kindName(N->op());
    Out.push_back('(');
    for (size_t I = 0; I < N->children().size(); ++I) {
      if (I)
        Out.push_back(',');
      Out += nodeStr(N->children()[I]);
    }
    Out.push_back(')');
    return Out;
  }
  }
  return "?";
}

} // namespace

bool PartialRegex::isConcrete() const {
  return Root && !anyNode(Root, PLabelKind::SketchLabel) &&
         !anyNode(Root, PLabelKind::SymIntLabel);
}

bool PartialRegex::isSymbolic() const {
  return Root && !anyNode(Root, PLabelKind::SketchLabel) &&
         anyNode(Root, PLabelKind::SymIntLabel);
}

bool PartialRegex::hasOpenNode() const {
  return Root && anyNode(Root, PLabelKind::SketchLabel);
}

std::optional<NodePath> PartialRegex::selectOpenNode() const {
  NodePath Path;
  const PNode *Found = nullptr;
  if (Root && findFirst(Root, PLabelKind::SketchLabel, Path, Found))
    return Path;
  return std::nullopt;
}

std::optional<NodePath> PartialRegex::selectSymInt(uint32_t &SymIdOut) const {
  NodePath Path;
  const PNode *Found = nullptr;
  if (Root && findFirst(Root, PLabelKind::SymIntLabel, Path, Found)) {
    SymIdOut = Found->symInt();
    return Path;
  }
  return std::nullopt;
}

const PNode *PartialRegex::nodeAt(const NodePath &Path) const {
  const PNode *N = Root.get();
  for (unsigned I : Path) {
    assert(N && I < N->children().size() && "bad node path");
    N = N->children()[I].get();
  }
  return N;
}

PartialRegex PartialRegex::replaceAt(const NodePath &Path, PNodePtr NewNode,
                                     uint32_t NewNumSymInts) const {
  return PartialRegex(rebuild(Root, Path, 0, NewNode), NewNumSymInts);
}

PartialRegex PartialRegex::assignSymInt(uint32_t SymId, int Value) const {
  bool Changed = false;
  PNodePtr NewRoot = substSymInt(Root, SymId, Value, Changed);
  assert(Changed && "symbolic integer not present");
  return PartialRegex(std::move(NewRoot), NumSymInts);
}

RegexPtr PartialRegex::toRegex() const {
  assert(isConcrete() && "partial regex is not concrete");
  return nodeToRegex(Root);
}

unsigned PartialRegex::size() const { return Root ? countNodes(Root) : 0; }

unsigned PartialRegex::numOpenNodes() const {
  return Root ? countKind(Root, PLabelKind::SketchLabel) : 0;
}

std::string PartialRegex::str() const {
  return Root ? nodeStr(Root) : "<empty>";
}
