//===- synth/InferConstants.cpp -------------------------------------------===//

#include "synth/InferConstants.h"

#include "smt/Solver.h"
#include "synth/Approximate.h"
#include "synth/Encode.h"

using namespace regel;

namespace {

/// Depth-first enumeration of the feasible assignments, in ascending value
/// order per variable (so the smallest constants — which Regel prefers —
/// come out first). Equivalent to Fig. 14's model-enumeration-with-blocking
/// loop, but incremental: instead of re-solving psi_0 with an ever-growing
/// set of blocking clauses, we walk the assignment tree directly and use
/// three-valued interval evaluation of psi_0 to skip definitely-infeasible
/// subtrees. The partial-assignment feasibility check (footnote 4) prunes
/// whole families of constants exactly as in the paper.
class InferSession {
public:
  InferSession(const PartialRegex &P0, const Examples &E,
               const SynthConfig &Cfg, FeasibilityChecker &Checker,
               InferStats &Stats, const Deadline *Budget)
      : E(E), Cfg(Cfg), Checker(Checker), Stats(Stats), Budget(Budget) {
    NumVars = P0.numSymInts();
    Domains.assign(NumVars, {1, Cfg.MaxInt});
    SymIntervalSet Lengths = encodeLengths(P0.root());
    for (const std::string &S : E.Pos)
      Constraints.push_back(
          lengthMembership(Lengths, static_cast<int64_t>(S.size())));
    // Well-formedness: RepeatRange(r, k1, k2) requires k1 <= k2.
    addRangeOrderConstraints(P0.root());
    enumerate(P0, 0);
  }

  std::vector<RegexPtr> take() { return std::move(Results); }

private:
  void addRangeOrderConstraints(const PNodePtr &N) {
    if (N->getKind() == PLabelKind::OpLabel &&
        N->op() == RegexKind::RepeatRange) {
      const PNodePtr &K1 = N->children()[1];
      const PNodePtr &K2 = N->children()[2];
      auto toTerm = [](const PNodePtr &C) {
        return C->getKind() == PLabelKind::IntLabel
                   ? smt::Term::constant(C->intValue())
                   : smt::Term::var(C->symInt());
      };
      Constraints.push_back(smt::Formula::le(toTerm(K1), toTerm(K2)));
    }
    for (const PNodePtr &C : N->children())
      addRangeOrderConstraints(C);
  }

  /// True when some constraint is already definitely violated under the
  /// current variable domains.
  bool definitelyInfeasible() {
    ++Stats.SolveCalls;
    for (const smt::FormulaPtr &C : Constraints)
      if (C->eval(Domains) == smt::Tri::False)
        return true;
    return false;
  }

  void enumerate(const PartialRegex &P, uint32_t VarIdx) {
    if (Results.size() >= Cfg.MaxInferResults)
      return;
    if (Budget && Budget->expired())
      return;
    if (++Stats.Iterations > Cfg.MaxInferIters) {
      Stats.HitIterationCap = true;
      return;
    }
    if (VarIdx == NumVars) {
      if (!definitelyInfeasible())
        Results.push_back(P.toRegex());
      return;
    }
    for (int V = 1; V <= Cfg.MaxInt; ++V) {
      if (Results.size() >= Cfg.MaxInferResults)
        break;
      if (Budget && Budget->expired())
        break;
      Domains[VarIdx] = {V, V};
      // Cheap length-based check before touching automata.
      if (definitelyInfeasible())
        continue;
      PartialRegex PPrime = P.assignSymInt(VarIdx, V);
      // Partial-assignment feasibility (footnote 4): one infeasible value
      // of kappa_i prunes every extension at once.
      if (VarIdx + 1 < NumVars && Cfg.UseApprox &&
          Checker.infeasible(PPrime)) {
        ++Stats.PrunedPartialAssignments;
        continue;
      }
      enumerate(PPrime, VarIdx + 1);
    }
    Domains[VarIdx] = {1, Cfg.MaxInt};
  }

  const Examples &E;
  const SynthConfig &Cfg;
  FeasibilityChecker &Checker;
  InferStats &Stats;
  const Deadline *Budget;

  uint32_t NumVars = 0;
  std::vector<smt::Interval> Domains;
  std::vector<smt::FormulaPtr> Constraints;
  std::vector<RegexPtr> Results;
};

} // namespace

std::vector<RegexPtr> regel::inferConstants(const PartialRegex &P0,
                                            const Examples &E,
                                            const SynthConfig &Cfg,
                                            FeasibilityChecker &Checker,
                                            InferStats &Stats,
                                            const Deadline *Budget) {
  assert(P0.isSymbolic() && "inferConstants expects a symbolic regex");
  InferSession Session(P0, E, Cfg, Checker, Stats, Budget);
  return Session.take();
}
