//===- synth/InferConstants.cpp -------------------------------------------===//

#include "synth/InferConstants.h"

#include "smt/Solver.h"
#include "synth/Approximate.h"
#include "synth/Encode.h"

#include <algorithm>

using namespace regel;

namespace {

/// Depth-first enumeration of the feasible assignments, in ascending value
/// order per variable (so the smallest constants — which Regel prefers —
/// come out first). Equivalent to Fig. 14's model-enumeration-with-blocking
/// loop, but incremental: instead of re-solving psi_0 with an ever-growing
/// set of blocking clauses, we walk the assignment tree directly and use
/// three-valued interval evaluation of psi_0 to skip definitely-infeasible
/// subtrees. The partial-assignment feasibility check (footnote 4) prunes
/// whole families of constants exactly as in the paper.
///
/// Before enumerating at all, one batched solver session checks the
/// length constraints for satisfiability: variables are declared once,
/// the example-independent prefix (range-order constraints) is asserted
/// once, and each distinct example length is checked under push/pop
/// against that shared prefix, followed by a joint check of the full
/// conjunction. Any Unsat refutes every concretization at once — the
/// enumeration would have rejected each of its up-to-MaxInt^n leaves one
/// interval sweep at a time. With a verdict store attached
/// (SynthConfig::SharedSmt) the session's queries hit across jobs that
/// share sketches and example lengths, and a cached per-example Unsat
/// core answers the larger joint query by conjunct-subset implication
/// without any search.
class InferSession {
public:
  InferSession(const PartialRegex &P0, const Examples &E,
               const SynthConfig &Cfg, FeasibilityChecker &Checker,
               InferStats &Stats, const Deadline *Budget)
      : Cfg(Cfg), Checker(Checker), Stats(Stats), Budget(Budget) {
    NumVars = P0.numSymInts();
    Domains.assign(NumVars, {1, Cfg.MaxInt});
    // Well-formedness: RepeatRange(r, k1, k2) requires k1 <= k2. This is
    // the example-independent prefix shared by every check below.
    addRangeOrderConstraints(P0.root());
    const size_t PrefixEnd = Constraints.size();

    SymIntervalSet Lengths = encodeLengths(P0.root());
    std::vector<smt::FormulaPtr> LengthConstraints;
    for (const std::string &S : E.Pos)
      addConstraintOnce(LengthConstraints,
                        lengthMembership(Lengths, static_cast<int64_t>(S.size())));
    for (const smt::FormulaPtr &C : LengthConstraints)
      addConstraintOnce(Constraints, C);

    if (Budget && Budget->expired())
      return;
    if (!checkLengthsSatisfiable(PrefixEnd, LengthConstraints)) {
      ++Stats.UnsatShortCircuits;
      return;
    }
    enumerate(P0, 0, 0);
  }

  std::vector<RegexPtr> take() { return std::move(Results); }

private:
  /// Appends \p C unless already present. Hash-consing makes structural
  /// equality pointer equality, so duplicate conjuncts (repeated example
  /// lengths, repeated subsketches) cost one pointer scan to drop.
  static void addConstraintOnce(std::vector<smt::FormulaPtr> &Out,
                                smt::FormulaPtr C) {
    if (std::find(Out.begin(), Out.end(), C) == Out.end())
      Out.push_back(std::move(C));
  }

  void addRangeOrderConstraints(const PNodePtr &N) {
    if (N->getKind() == PLabelKind::OpLabel &&
        N->op() == RegexKind::RepeatRange) {
      const PNodePtr &K1 = N->children()[1];
      const PNodePtr &K2 = N->children()[2];
      auto toTerm = [](const PNodePtr &C) {
        return C->getKind() == PLabelKind::IntLabel
                   ? smt::Term::constant(C->intValue())
                   : smt::Term::var(C->symInt());
      };
      addConstraintOnce(Constraints, smt::Formula::le(toTerm(K1), toTerm(K2)));
    }
    for (const PNodePtr &C : N->children())
      addRangeOrderConstraints(C);
  }

  /// One batched solver session over the shared prefix: a per-example
  /// push/pop check for each distinct length, then (when there is more
  /// than one) a joint check of the full conjunction. Returns false when
  /// any check is Unsat — no concretization can satisfy the examples.
  /// ResourceOut is "unknown": the enumeration proceeds, its exactness
  /// does not depend on any solve finishing.
  bool checkLengthsSatisfiable(
      size_t PrefixEnd, const std::vector<smt::FormulaPtr> &LengthConstraints) {
    smt::Solver S;
    S.setStore(Cfg.SharedSmt);
    for (uint32_t I = 0; I < NumVars; ++I)
      S.declareVar(1, Cfg.MaxInt);
    for (size_t I = 0; I < PrefixEnd; ++I)
      S.addConstraint(Constraints[I]);
    bool AnyUnsat = false;
    for (const smt::FormulaPtr &LenC : LengthConstraints) {
      if (AnyUnsat)
        break;
      S.push();
      S.addConstraint(LenC);
      if (S.solve(Cfg.SmtNodeBudget).Status == smt::SolveStatus::Unsat)
        AnyUnsat = true;
      S.pop();
    }
    if (!AnyUnsat && LengthConstraints.size() > 1) {
      // The joint query's conjunct set contains each per-example set, so
      // a store can answer it from a cached per-example Unsat core.
      for (const smt::FormulaPtr &LenC : LengthConstraints)
        S.addConstraint(LenC);
      if (S.solve(Cfg.SmtNodeBudget).Status == smt::SolveStatus::Unsat)
        AnyUnsat = true;
    }
    Stats.SmtSolves += S.solves();
    Stats.SmtCacheHits += S.storeHits();
    return !AnyUnsat;
  }

  /// True when some constraint is already definitely violated under the
  /// current variable domains. Constraints whose \p TrueMask bit is set
  /// were proven definitely-true at an ancestor node and are skipped:
  /// three-valued evaluation is monotone under domain restriction, so
  /// True can never degrade. Newly proven constraints are recorded into
  /// \p ChildMask (first 64 constraints; the tail is simply re-checked).
  bool definitelyInfeasible(uint64_t TrueMask, uint64_t *ChildMask) {
    ++Stats.IntervalEvals;
    for (size_t I = 0; I < Constraints.size(); ++I) {
      if (I < 64 && (TrueMask >> I) & 1)
        continue;
      smt::Tri T = Constraints[I]->eval(Domains);
      if (T == smt::Tri::False)
        return true;
      if (T == smt::Tri::True && ChildMask && I < 64)
        *ChildMask |= uint64_t(1) << I;
    }
    return false;
  }

  /// Restores one variable's domain to its full range on scope exit, so
  /// EVERY exit path of an enumeration frame — result cap, deadline,
  /// iteration cap — leaves Domains clean. (The cap used to be able to
  /// fire mid-loop and leave a stale singleton behind, corrupting the
  /// sibling subtrees the caller visits next.)
  class DomainScope {
  public:
    DomainScope(std::vector<smt::Interval> &D, uint32_t I)
        : D(D), I(I), Saved(D[I]) {}
    ~DomainScope() { D[I] = Saved; }
    DomainScope(const DomainScope &) = delete;
    DomainScope &operator=(const DomainScope &) = delete;

  private:
    std::vector<smt::Interval> &D;
    uint32_t I;
    smt::Interval Saved;
  };

  /// True when the enumeration should unwind completely: result cap,
  /// deadline, or the iteration cap (which, once hit, must stop the
  /// whole walk rather than charge one wasted iteration per remaining
  /// sibling on the way out).
  bool stopped() const {
    return Stop || Results.size() >= Cfg.MaxInferResults ||
           (Budget && Budget->expired());
  }

  void enumerate(const PartialRegex &P, uint32_t VarIdx, uint64_t TrueMask) {
    if (stopped())
      return;
    if (++Stats.Iterations > Cfg.MaxInferIters) {
      Stats.HitIterationCap = true;
      Stop = true;
      return;
    }
    if (VarIdx == NumVars) {
      if (!definitelyInfeasible(TrueMask, nullptr))
        Results.push_back(P.toRegex());
      return;
    }
    DomainScope Scope(Domains, VarIdx);
    for (int V = 1; V <= Cfg.MaxInt && !stopped(); ++V) {
      Domains[VarIdx] = {V, V};
      // Cheap length-based check before touching automata; constraints
      // proven at this node stay proven for the whole subtree.
      uint64_t ChildMask = TrueMask;
      if (definitelyInfeasible(TrueMask, &ChildMask))
        continue;
      PartialRegex PPrime = P.assignSymInt(VarIdx, V);
      // Partial-assignment feasibility (footnote 4): one infeasible value
      // of kappa_i prunes every extension at once.
      if (VarIdx + 1 < NumVars && Cfg.UseApprox &&
          Checker.infeasible(PPrime)) {
        ++Stats.PrunedPartialAssignments;
        continue;
      }
      enumerate(PPrime, VarIdx + 1, ChildMask);
    }
  }

  const SynthConfig &Cfg;
  FeasibilityChecker &Checker;
  InferStats &Stats;
  const Deadline *Budget;

  uint32_t NumVars = 0;
  bool Stop = false;
  std::vector<smt::Interval> Domains;
  std::vector<smt::FormulaPtr> Constraints;
  std::vector<RegexPtr> Results;
};

} // namespace

std::vector<RegexPtr> regel::inferConstants(const PartialRegex &P0,
                                            const Examples &E,
                                            const SynthConfig &Cfg,
                                            FeasibilityChecker &Checker,
                                            InferStats &Stats,
                                            const Deadline *Budget) {
  assert(P0.isSymbolic() && "inferConstants expects a symbolic regex");
  InferSession Session(P0, E, Cfg, Checker, Stats, Budget);
  return Session.take();
}
